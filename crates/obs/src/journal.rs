//! The structured event journal: an append-only, bounded, seq-numbered
//! stream of fine-grained pipeline events.
//!
//! Spans and counters answer *how much*; the journal answers *when and in
//! what order*. Each [`JournalEvent`] carries a strictly increasing
//! sequence number, a run-relative monotonic timestamp in microseconds, a
//! Chrome-style phase (begin / end / instant), a name, a `lane` (the
//! timeline row the event belongs to — `"pipeline"`, `"collect"`,
//! `"fit"`, `"spmd"`, a rank-class lane …), and a small map of numeric
//! arguments.
//!
//! ## Determinism discipline
//!
//! Events are only ever emitted from serial sections of the pipeline (the
//! engine's stage loop, the per-count collect sweep, the post-fit tally,
//! the replay commit loop), so the *order and content* of the stream is a
//! pure function of the inputs. The two scheduling-dependent fields are
//! the timestamps and any `sched.*`-named events; [`JournalSnapshot::masked`]
//! zeroes the former and strips the latter (renumbering the survivors), so
//! a masked journal is required to be bit-identical across thread counts.
//!
//! ## Bounded buffering
//!
//! The journal holds at most its configured capacity
//! ([`DEFAULT_JOURNAL_CAPACITY`] unless overridden); once full, further
//! events are counted in [`JournalSnapshot::dropped`] rather than
//! recorded, so a runaway emitter cannot exhaust memory. Dropped events do
//! not consume sequence numbers.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Default maximum number of buffered events per journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// The event-name prefix reserved for scheduling-dependent events;
/// stripped by [`JournalSnapshot::masked`]. Same convention as
/// [`crate::SCHED_PREFIX`] for counters.
pub const SCHED_EVENT_PREFIX: &str = "sched.";

/// Chrome-trace-style event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventPhase {
    /// A duration begins on this event's lane.
    Begin,
    /// The most recent open duration on this event's lane ends.
    End,
    /// A point-in-time event.
    Instant,
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Strictly increasing sequence number (0-based, per journal).
    pub seq: u64,
    /// Microseconds since the journal was created (monotonic clock).
    pub ts_us: u64,
    /// Begin / end / instant.
    pub phase: EventPhase,
    /// Event name (e.g. `"collect"`, `"p96"`, `"extrap.fit.Linear"`).
    pub name: String,
    /// Timeline lane the event belongs to (e.g. `"pipeline"`, `"class0"`).
    pub lane: String,
    /// Numeric arguments (kept numeric so masking stays trivial).
    pub args: BTreeMap<String, f64>,
}

struct JournalState {
    events: Vec<JournalEvent>,
    next_seq: u64,
    dropped: u64,
}

/// The append-only event buffer. Owned by a
/// [`Recorder`](crate::Recorder) built with
/// [`Recorder::with_journal`](crate::Recorder::with_journal); emitters
/// reach it through a cheap [`JournalHandle`].
pub struct Journal {
    start: Instant,
    capacity: usize,
    state: Mutex<JournalState>,
}

fn lock(state: &Mutex<JournalState>) -> MutexGuard<'_, JournalState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Journal {
    /// A fresh journal with the default capacity.
    pub fn new() -> Arc<Journal> {
        Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh journal buffering at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Arc<Journal> {
        Arc::new(Journal {
            start: Instant::now(),
            capacity,
            state: Mutex::new(JournalState {
                events: Vec::new(),
                next_seq: 0,
                dropped: 0,
            }),
        })
    }

    /// An emitting handle onto this journal.
    pub fn handle(self: &Arc<Journal>) -> JournalHandle {
        JournalHandle {
            inner: Some(Arc::clone(self)),
        }
    }

    /// A copy of everything journaled so far.
    pub fn snapshot(&self) -> JournalSnapshot {
        let state = lock(&self.state);
        JournalSnapshot {
            events: state.events.clone(),
            dropped: state.dropped,
        }
    }

    fn emit(&self, phase: EventPhase, name: &str, lane: &str, args: &[(&str, f64)]) {
        // Timestamp before taking the lock so lock contention does not
        // inflate it; sequence numbers are assigned under the lock so
        // they are strictly increasing in buffer order.
        let ts_us = self.start.elapsed().as_micros() as u64;
        let mut state = lock(&self.state);
        if state.events.len() >= self.capacity {
            state.dropped += 1;
            return;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push(JournalEvent {
            seq,
            ts_us,
            phase,
            name: name.to_string(),
            lane: lane.to_string(),
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }
}

/// A cheap, cloneable emitter onto a [`Journal`] — or a no-op when no
/// journal is enabled. Obtain one ambiently with [`crate::journal`] or
/// from [`Recorder::journal`](crate::Recorder::journal).
#[derive(Clone, Default)]
pub struct JournalHandle {
    inner: Option<Arc<Journal>>,
}

impl JournalHandle {
    /// The handle that drops every event.
    pub fn disabled() -> JournalHandle {
        JournalHandle { inner: None }
    }

    /// Whether events emitted through this handle are recorded. Emitters
    /// should check this before formatting event names or arguments.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a duration on `lane`.
    pub fn begin(&self, name: &str, lane: &str, args: &[(&str, f64)]) {
        if let Some(j) = &self.inner {
            j.emit(EventPhase::Begin, name, lane, args);
        }
    }

    /// Closes the most recent open duration on `lane`.
    pub fn end(&self, name: &str, lane: &str, args: &[(&str, f64)]) {
        if let Some(j) = &self.inner {
            j.emit(EventPhase::End, name, lane, args);
        }
    }

    /// Records a point-in-time event on `lane`.
    pub fn instant(&self, name: &str, lane: &str, args: &[(&str, f64)]) {
        if let Some(j) = &self.inner {
            j.emit(EventPhase::Instant, name, lane, args);
        }
    }
}

/// An immutable copy of a journal: the buffered events plus the count of
/// events dropped once the buffer filled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalSnapshot {
    /// Buffered events in emission (= sequence) order.
    pub events: Vec<JournalEvent>,
    /// Events discarded because the buffer was full.
    pub dropped: u64,
}

impl JournalSnapshot {
    /// Serializes the event stream as JSONL: one JSON object per line, in
    /// sequence order. The `dropped` count is not part of the stream;
    /// [`JournalSnapshot::from_jsonl`] reconstructs it as zero.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            match serde_json::to_string(event) {
                Ok(line) => {
                    out.push_str(&line);
                    out.push('\n');
                }
                Err(_) => continue,
            }
        }
        out
    }

    /// Parses a JSONL stream produced by [`JournalSnapshot::to_jsonl`].
    /// Blank lines are skipped; the first malformed line is an error.
    pub fn from_jsonl(text: &str) -> std::result::Result<JournalSnapshot, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: JournalEvent =
                serde_json::from_str(line).map_err(|e| format!("journal line {}: {e:?}", i + 1))?;
            events.push(event);
        }
        Ok(JournalSnapshot { events, dropped: 0 })
    }

    /// The deterministic view: timestamps zeroed, `sched.*`-named events
    /// stripped, and the survivors renumbered consecutively from zero.
    /// Two runs of the same configuration must produce bit-identical
    /// masked journals regardless of thread count.
    pub fn masked(&self) -> JournalSnapshot {
        let events = self
            .events
            .iter()
            .filter(|e| !e.name.starts_with(SCHED_EVENT_PREFIX))
            .enumerate()
            .map(|(i, e)| JournalEvent {
                seq: i as u64,
                ts_us: 0,
                phase: e.phase,
                name: e.name.clone(),
                lane: e.lane.clone(),
                args: e.args.clone(),
            })
            .collect();
        JournalSnapshot { events, dropped: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_seq_numbered_in_emission_order() {
        let journal = Journal::new();
        let handle = journal.handle();
        handle.begin("pipeline", "pipeline", &[]);
        handle.instant("tick", "pipeline", &[("n", 1.0)]);
        handle.end("pipeline", "pipeline", &[]);
        let snap = journal.snapshot();
        assert_eq!(snap.events.len(), 3);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(snap.events[0].phase, EventPhase::Begin);
        assert_eq!(snap.events[1].args["n"], 1.0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn bounded_buffer_counts_drops_without_consuming_seqs() {
        let journal = Journal::with_capacity(2);
        let handle = journal.handle();
        for i in 0..5 {
            handle.instant("e", "lane", &[("i", f64::from(i))]);
        }
        let snap = journal.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.events[1].seq, 1);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let handle = JournalHandle::disabled();
        assert!(!handle.enabled());
        handle.begin("x", "lane", &[]);
        handle.end("x", "lane", &[]);
        handle.instant("x", "lane", &[]);
    }

    #[test]
    fn masked_strips_sched_events_zeroes_timestamps_and_renumbers() {
        let journal = Journal::new();
        let handle = journal.handle();
        handle.begin("fit", "pipeline", &[]);
        handle.instant("sched.extrap.parallel_fit", "fit", &[]);
        handle.end("fit", "pipeline", &[("elements", 3.0)]);
        let masked = journal.snapshot().masked();
        assert_eq!(masked.events.len(), 2);
        assert!(masked.events.iter().all(|e| e.ts_us == 0));
        assert_eq!(masked.events[0].seq, 0);
        assert_eq!(masked.events[1].seq, 1);
        assert_eq!(masked.events[1].name, "fit");
        assert_eq!(masked.events[1].args["elements"], 3.0);
    }

    #[test]
    fn jsonl_roundtrips() {
        let journal = Journal::new();
        let handle = journal.handle();
        handle.begin("collect", "pipeline", &[("nranks", 6.0)]);
        handle.end("collect", "pipeline", &[]);
        let snap = journal.snapshot();
        let text = snap.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = JournalSnapshot::from_jsonl(&text).expect("roundtrip");
        assert_eq!(back.events, snap.events);
    }

    #[test]
    fn concurrent_emission_keeps_seqs_strictly_increasing() {
        let journal = Journal::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let handle = journal.handle();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        handle.instant("e", "lane", &[("t", f64::from(t)), ("i", f64::from(i))]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        let snap = journal.snapshot();
        assert_eq!(snap.events.len(), 400);
        for pair in snap.events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
