//! Address-stream generation: the IR analog of running an instrumented
//! binary.
//!
//! PEBIL-instrumented executables emit "the memory address from each memory
//! reference" as the application runs; the stream is consumed on-the-fly
//! because storing it is infeasible ("over 2 TB of data per hour" per
//! process, Section III-A). [`AccessStream`] is that emitter: it interprets
//! a basic block and calls a sink closure once per dynamic memory reference
//! with the concrete effective address. The sink is, in practice, the cache
//! simulator of `xtrace-cache` — nothing is ever buffered.
//!
//! Instruction cursors persist across invocations of the same stream, so a
//! block invoked once per timestep re-walks its region from where it left
//! off, giving repeated sweeps the temporal locality a real loop nest has.

use crate::block::BasicBlock;
use crate::ids::{BlockId, InstrId};
use crate::instr::{InstrKind, MemOp};
use crate::pattern::AddressPattern;
use crate::program::Program;
use crate::rng::SplitMix64;

/// One dynamic memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Static instruction that issued the reference.
    pub instr: InstrId,
    /// Effective virtual address.
    pub addr: u64,
    /// Bytes referenced.
    pub bytes: u32,
    /// True for stores.
    pub is_store: bool,
}

/// Flattened per-instruction state, precomputed once per stream so the hot
/// loop does no program lookups.
#[derive(Debug, Clone)]
struct MemSpec {
    instr: InstrId,
    base: u64,
    size: u64,
    elem_bytes: u32,
    bytes: u32,
    pattern: AddressPattern,
    is_store: bool,
    repeat: u32,
    seed: u64,
    /// Accesses issued so far by this instruction (the pattern cursor).
    count: u64,
}

/// Streams the memory accesses of one basic block, invocation by
/// invocation.
#[derive(Debug, Clone)]
pub struct AccessStream {
    specs: Vec<MemSpec>,
    iterations: u64,
}

impl AccessStream {
    /// Prepares a stream for `block_id` of `program`.
    ///
    /// `seed` deterministically parameterizes random patterns; the tracer
    /// derives it from the rank so different MPI tasks gather different (but
    /// reproducible) random addresses.
    pub fn new(program: &Program, block_id: BlockId, seed: u64) -> Self {
        let block: &BasicBlock = program.block(block_id);
        let specs = block
            .instrs
            .iter()
            .enumerate()
            .filter_map(|(idx, ins)| match ins.kind {
                InstrKind::Mem {
                    op,
                    region,
                    bytes,
                    pattern,
                } => {
                    let r = program.region(region);
                    Some(MemSpec {
                        instr: InstrId(idx as u32),
                        base: program.region_base(region),
                        size: r.bytes,
                        elem_bytes: r.elem_bytes,
                        bytes,
                        pattern,
                        is_store: matches!(op, MemOp::Store),
                        repeat: ins.repeat,
                        seed: SplitMix64::mix(
                            seed ^ (u64::from(block_id.0) << 32) ^ idx as u64,
                        ),
                        count: 0,
                    })
                }
                InstrKind::Fp { .. } => None,
            })
            .collect();
        Self {
            specs,
            iterations: block.iterations,
        }
    }

    /// Memory accesses one invocation will generate.
    pub fn accesses_per_invocation(&self) -> u64 {
        self.iterations
            * self
                .specs
                .iter()
                .map(|s| u64::from(s.repeat))
                .sum::<u64>()
    }

    /// Runs one invocation (`block.iterations` trips), calling `sink` for
    /// every memory reference in program order.
    #[inline]
    pub fn run_invocation(&mut self, sink: &mut impl FnMut(MemAccess)) {
        self.run_iterations(self.iterations, sink);
    }

    /// Runs a specific number of loop iterations. Exposed so callers can
    /// interleave partial executions (e.g. sampling) without losing cursor
    /// state.
    pub fn run_iterations(&mut self, iters: u64, sink: &mut impl FnMut(MemAccess)) {
        for _ in 0..iters {
            for spec in &mut self.specs {
                for _ in 0..spec.repeat {
                    let off =
                        spec.pattern
                            .offset(spec.count, spec.size, spec.elem_bytes, spec.seed);
                    spec.count += 1;
                    sink(MemAccess {
                        instr: spec.instr,
                        addr: spec.base + off,
                        bytes: spec.bytes,
                        is_store: spec.is_store,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SourceLoc;
    use crate::ids::RegionId;
    use crate::instr::{FpOp, Instruction};
    use crate::program::ProgramBuilder;

    fn two_instr_program() -> (Program, BlockId) {
        let mut b = ProgramBuilder::default();
        let ra = b.region("a", 1 << 12, 8);
        let rb = b.region("b", 1 << 14, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "body",
            SourceLoc::new("t.c", 1, "f"),
            3,
            vec![
                Instruction::mem(MemOp::Load, ra, 8, AddressPattern::unit(8)),
                Instruction::fp(FpOp::Add),
                Instruction::mem(MemOp::Store, rb, 8, AddressPattern::unit(8)).with_repeat(2),
            ],
        ));
        (b.build().unwrap(), blk)
    }

    #[test]
    fn stream_length_matches_counts() {
        let (p, blk) = two_instr_program();
        let mut s = AccessStream::new(&p, blk, 0);
        assert_eq!(s.accesses_per_invocation(), 3 * (1 + 2));
        let mut n = 0u64;
        s.run_invocation(&mut |_| n += 1);
        assert_eq!(n, 9);
    }

    #[test]
    fn program_order_and_attribution() {
        let (p, blk) = two_instr_program();
        let mut s = AccessStream::new(&p, blk, 0);
        let mut got = Vec::new();
        s.run_iterations(1, &mut |a| got.push(a));
        // One iteration: load from instr 0, then two stores from instr 2.
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].instr, InstrId(0));
        assert!(!got[0].is_store);
        assert_eq!(got[1].instr, InstrId(2));
        assert!(got[1].is_store);
        assert_eq!(got[2].instr, InstrId(2));
    }

    #[test]
    fn cursors_persist_across_invocations() {
        let (p, blk) = two_instr_program();
        let mut s = AccessStream::new(&p, blk, 0);
        let mut first = Vec::new();
        s.run_iterations(1, &mut |a| first.push(a.addr));
        let mut second = Vec::new();
        s.run_iterations(1, &mut |a| second.push(a.addr));
        // The unit-stride load advanced by one element between iterations.
        assert_eq!(second[0], first[0] + 8);
        // The repeat-2 store advanced by two elements.
        assert_eq!(second[1], first[1] + 16);
    }

    #[test]
    fn addresses_fall_inside_their_regions() {
        let (p, blk) = two_instr_program();
        let ra_base = p.region_base(RegionId(0));
        let ra_end = ra_base + p.region(RegionId(0)).bytes;
        let rb_base = p.region_base(RegionId(1));
        let rb_end = rb_base + p.region(RegionId(1)).bytes;
        let mut s = AccessStream::new(&p, blk, 77);
        s.run_iterations(1000, &mut |a| {
            if a.instr == InstrId(0) {
                assert!(a.addr >= ra_base && a.addr + u64::from(a.bytes) <= ra_end);
            } else {
                assert!(a.addr >= rb_base && a.addr + u64::from(a.bytes) <= rb_end);
            }
        });
    }

    #[test]
    fn streams_are_deterministic() {
        let (p, blk) = two_instr_program();
        let collect = |seed| {
            let mut s = AccessStream::new(&p, blk, seed);
            let mut v = Vec::new();
            s.run_iterations(50, &mut |a| v.push(a.addr));
            v
        };
        assert_eq!(collect(5), collect(5));
    }

    #[test]
    fn distinct_seeds_change_random_streams_only() {
        let mut b = ProgramBuilder::default();
        let r = b.region("a", 1 << 16, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "rand",
            SourceLoc::new("t.c", 2, "g"),
            1,
            vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::Random)],
        ));
        let p = b.build().unwrap();
        let collect = |seed| {
            let mut s = AccessStream::new(&p, blk, seed);
            let mut v = Vec::new();
            s.run_iterations(100, &mut |a| v.push(a.addr));
            v
        };
        assert_ne!(collect(1), collect(2));
        assert_eq!(collect(3), collect(3));
    }

    #[test]
    fn fp_only_block_emits_nothing() {
        let mut b = ProgramBuilder::default();
        b.region("unused", 64, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "fp",
            SourceLoc::new("t.c", 3, "h"),
            100,
            vec![Instruction::fp(FpOp::Mul).with_repeat(8)],
        ));
        let p = b.build().unwrap();
        let mut s = AccessStream::new(&p, blk, 0);
        assert_eq!(s.accesses_per_invocation(), 0);
        let mut n = 0;
        s.run_invocation(&mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
