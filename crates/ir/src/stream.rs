//! Address-stream generation: the IR analog of running an instrumented
//! binary.
//!
//! PEBIL-instrumented executables emit "the memory address from each memory
//! reference" as the application runs; the stream is consumed on-the-fly
//! because storing it is infeasible ("over 2 TB of data per hour" per
//! process, Section III-A). [`AccessStream`] is that emitter: it interprets
//! a basic block and calls a sink closure once per dynamic memory reference
//! with the concrete effective address. The sink is, in practice, the cache
//! simulator of `xtrace-cache` — nothing is ever buffered.
//!
//! Instruction cursors persist across invocations of the same stream, so a
//! block invoked once per timestep re-walks its region from where it left
//! off, giving repeated sweeps the temporal locality a real loop nest has.

use crate::block::BasicBlock;
use crate::ids::{BlockId, InstrId};
use crate::instr::{InstrKind, MemOp};
use crate::pattern::AddressPattern;
use crate::program::Program;
use crate::rng::SplitMix64;

/// One dynamic memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Static instruction that issued the reference.
    pub instr: InstrId,
    /// Effective virtual address.
    pub addr: u64,
    /// Bytes referenced.
    pub bytes: u32,
    /// True for stores.
    pub is_store: bool,
}

/// Flattened per-instruction state, precomputed once per stream so the hot
/// loop does no program lookups.
#[derive(Debug, Clone)]
struct MemSpec {
    instr: InstrId,
    base: u64,
    bytes: u32,
    is_store: bool,
    repeat: u32,
    cursor: Cursor,
}

/// Incremental address generator, one per memory instruction.
///
/// Each variant produces byte offsets **identical** to calling
/// [`AddressPattern::offset`] with an increasing access index `k` (the
/// `stream_matches_pattern_offset_spec` test pins this), but without the
/// two per-access divisions that the direct formula costs: strided and
/// stencil cursors advance by pre-reduced modular increments, so the hot
/// path is an add and a conditional subtract.
#[derive(Debug, Clone)]
enum Cursor {
    /// `cur` and `stride` in bytes, both already reduced mod `span`
    /// (`span` = usable region bytes, `elems * elem_bytes`).
    Strided { cur: u64, stride: u64, span: u64 },
    /// `step` is the sweep position (mod `elems`) in elements; `point_off`
    /// holds `(point * plane_elems) % elems` per stencil point.
    Stencil {
        step: u64,
        point: usize,
        point_off: Vec<u64>,
        elems: u64,
        elem: u64,
    },
    /// Pure function of the access index `k`; nothing to incrementalize.
    Random {
        k: u64,
        seed: u64,
        elems: u64,
        elem: u64,
    },
}

impl Cursor {
    fn new(pattern: AddressPattern, size: u64, elem_bytes: u32, seed: u64) -> Self {
        let elem = u64::from(elem_bytes);
        debug_assert!(size >= elem);
        let elems = size / elem;
        match pattern {
            AddressPattern::Strided { stride } => {
                let stride_elems = (stride / elem).max(1);
                Cursor::Strided {
                    cur: 0,
                    stride: (stride_elems % elems) * elem,
                    span: elems * elem,
                }
            }
            AddressPattern::Stencil { points, plane } => {
                let plane_elems = (plane / elem).max(1);
                let point_off = (0..u64::from(points.max(1)))
                    .map(|p| (p * plane_elems) % elems)
                    .collect();
                Cursor::Stencil {
                    step: 0,
                    point: 0,
                    point_off,
                    elems,
                    elem,
                }
            }
            AddressPattern::Random => Cursor::Random {
                k: 0,
                seed,
                elems,
                elem,
            },
        }
    }

    /// The next byte offset inside the region; advances the cursor.
    #[inline]
    fn next_offset(&mut self) -> u64 {
        match self {
            Cursor::Strided { cur, stride, span } => {
                let off = *cur;
                let mut next = off + *stride;
                if next >= *span {
                    next -= *span;
                }
                *cur = next;
                off
            }
            Cursor::Stencil {
                step,
                point,
                point_off,
                elems,
                elem,
            } => {
                let mut off = *step + point_off[*point];
                if off >= *elems {
                    off -= *elems;
                }
                *point += 1;
                if *point == point_off.len() {
                    *point = 0;
                    *step += 1;
                    if *step == *elems {
                        *step = 0;
                    }
                }
                off * *elem
            }
            Cursor::Random {
                k,
                seed,
                elems,
                elem,
            } => {
                let mut h = SplitMix64::new(*seed ^ SplitMix64::mix(*k));
                *k += 1;
                h.next_below(*elems) * *elem
            }
        }
    }
}

/// Streams the memory accesses of one basic block, invocation by
/// invocation.
#[derive(Debug, Clone)]
pub struct AccessStream {
    specs: Vec<MemSpec>,
    iterations: u64,
}

impl AccessStream {
    /// Prepares a stream for `block_id` of `program`.
    ///
    /// `seed` deterministically parameterizes random patterns; the tracer
    /// derives it from the rank so different MPI tasks gather different (but
    /// reproducible) random addresses.
    pub fn new(program: &Program, block_id: BlockId, seed: u64) -> Self {
        let block: &BasicBlock = program.block(block_id);
        let specs = block
            .instrs
            .iter()
            .enumerate()
            .filter_map(|(idx, ins)| match ins.kind {
                InstrKind::Mem {
                    op,
                    region,
                    bytes,
                    pattern,
                } => {
                    let r = program.region(region);
                    let instr_seed =
                        SplitMix64::mix(seed ^ (u64::from(block_id.0) << 32) ^ idx as u64);
                    Some(MemSpec {
                        instr: InstrId(idx as u32),
                        base: program.region_base(region),
                        bytes,
                        is_store: matches!(op, MemOp::Store),
                        repeat: ins.repeat,
                        cursor: Cursor::new(pattern, r.bytes, r.elem_bytes, instr_seed),
                    })
                }
                InstrKind::Fp { .. } => None,
            })
            .collect();
        Self {
            specs,
            iterations: block.iterations,
        }
    }

    /// Memory accesses one invocation will generate.
    pub fn accesses_per_invocation(&self) -> u64 {
        self.iterations * self.refs_per_iteration()
    }

    /// Memory references one loop iteration generates — the indivisible
    /// production unit of [`Self::fill_ring`].
    pub fn refs_per_iteration(&self) -> u64 {
        self.specs.iter().map(|s| u64::from(s.repeat)).sum()
    }

    /// Runs one invocation (`block.iterations` trips), calling `sink` for
    /// every memory reference in program order.
    #[inline]
    pub fn run_invocation(&mut self, sink: &mut impl FnMut(MemAccess)) {
        self.run_iterations(self.iterations, sink);
    }

    /// Runs a specific number of loop iterations. Exposed so callers can
    /// interleave partial executions (e.g. sampling) without losing cursor
    /// state.
    pub fn run_iterations(&mut self, iters: u64, sink: &mut impl FnMut(MemAccess)) {
        for _ in 0..iters {
            for spec in &mut self.specs {
                for _ in 0..spec.repeat {
                    let off = spec.cursor.next_offset();
                    sink(MemAccess {
                        instr: spec.instr,
                        addr: spec.base + off,
                        bytes: spec.bytes,
                        is_store: spec.is_store,
                    });
                }
            }
        }
    }

    /// Streams **whole iterations** into `ring` until the next iteration
    /// would not fit or `max_iters` is exhausted, and returns the number
    /// of iterations produced. Access order is identical to
    /// [`Self::run_iterations`]; cursors persist across calls, so
    /// fill/drain chunking is invisible to the consumer.
    ///
    /// This is the producer half of the bounded streaming loop: the
    /// caller drains the ring (a flat contiguous slice) through the cache
    /// simulator and calls again. Returning `0` with `max_iters > 0`
    /// means the ring lacks room for even one iteration — backpressure;
    /// the caller must drain before refilling. Progress is guaranteed
    /// whenever `ring.capacity() >= self.refs_per_iteration()` and the
    /// ring is empty.
    pub fn fill_ring(&mut self, ring: &mut AccessRing, max_iters: u64) -> u64 {
        let per = self.refs_per_iteration();
        if per == 0 {
            // FP-only block: every iteration emits nothing.
            return max_iters;
        }
        let iters = max_iters.min(ring.free() as u64 / per);
        self.run_iterations(iters, &mut |a| ring.buf.push(a));
        ring.peak = ring.peak.max(ring.buf.len());
        iters
    }
}

/// Bounded fixed-capacity buffer between address generation and cache
/// simulation.
///
/// A rank's full address stream is never materialized: the tracer fills
/// the ring one batch of whole iterations at a time
/// ([`AccessStream::fill_ring`]), drains it through the simulator as one
/// flat `&[MemAccess]` slice, and reuses the storage — so peak memory is
/// the configured capacity regardless of how many references a block
/// generates. [`Self::peak`] reports the high-water occupancy for the
/// bounded-memory assertion in CI.
#[derive(Debug, Clone)]
pub struct AccessRing {
    buf: Vec<MemAccess>,
    capacity: usize,
    peak: usize,
}

impl AccessRing {
    /// A ring holding at most `capacity` references (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Configured capacity in references.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffered references awaiting drain.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remaining room in references.
    pub fn free(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// High-water occupancy since construction (never exceeds
    /// [`Self::capacity`]).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The buffered references, in production order, as one contiguous
    /// slice — the consumer's flat inner-loop view.
    pub fn as_slice(&self) -> &[MemAccess] {
        &self.buf
    }

    /// Empties the ring, keeping its storage for the next fill.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SourceLoc;
    use crate::ids::RegionId;
    use crate::instr::{FpOp, Instruction};
    use crate::program::ProgramBuilder;

    fn two_instr_program() -> (Program, BlockId) {
        let mut b = ProgramBuilder::default();
        let ra = b.region("a", 1 << 12, 8);
        let rb = b.region("b", 1 << 14, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "body",
            SourceLoc::new("t.c", 1, "f"),
            3,
            vec![
                Instruction::mem(MemOp::Load, ra, 8, AddressPattern::unit(8)),
                Instruction::fp(FpOp::Add),
                Instruction::mem(MemOp::Store, rb, 8, AddressPattern::unit(8)).with_repeat(2),
            ],
        ));
        (b.build().unwrap(), blk)
    }

    #[test]
    fn stream_length_matches_counts() {
        let (p, blk) = two_instr_program();
        let mut s = AccessStream::new(&p, blk, 0);
        assert_eq!(s.accesses_per_invocation(), 3 * (1 + 2));
        let mut n = 0u64;
        s.run_invocation(&mut |_| n += 1);
        assert_eq!(n, 9);
    }

    #[test]
    fn program_order_and_attribution() {
        let (p, blk) = two_instr_program();
        let mut s = AccessStream::new(&p, blk, 0);
        let mut got = Vec::new();
        s.run_iterations(1, &mut |a| got.push(a));
        // One iteration: load from instr 0, then two stores from instr 2.
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].instr, InstrId(0));
        assert!(!got[0].is_store);
        assert_eq!(got[1].instr, InstrId(2));
        assert!(got[1].is_store);
        assert_eq!(got[2].instr, InstrId(2));
    }

    #[test]
    fn cursors_persist_across_invocations() {
        let (p, blk) = two_instr_program();
        let mut s = AccessStream::new(&p, blk, 0);
        let mut first = Vec::new();
        s.run_iterations(1, &mut |a| first.push(a.addr));
        let mut second = Vec::new();
        s.run_iterations(1, &mut |a| second.push(a.addr));
        // The unit-stride load advanced by one element between iterations.
        assert_eq!(second[0], first[0] + 8);
        // The repeat-2 store advanced by two elements.
        assert_eq!(second[1], first[1] + 16);
    }

    #[test]
    fn addresses_fall_inside_their_regions() {
        let (p, blk) = two_instr_program();
        let ra_base = p.region_base(RegionId(0));
        let ra_end = ra_base + p.region(RegionId(0)).bytes;
        let rb_base = p.region_base(RegionId(1));
        let rb_end = rb_base + p.region(RegionId(1)).bytes;
        let mut s = AccessStream::new(&p, blk, 77);
        s.run_iterations(1000, &mut |a| {
            if a.instr == InstrId(0) {
                assert!(a.addr >= ra_base && a.addr + u64::from(a.bytes) <= ra_end);
            } else {
                assert!(a.addr >= rb_base && a.addr + u64::from(a.bytes) <= rb_end);
            }
        });
    }

    /// The incremental cursors must reproduce `AddressPattern::offset`
    /// exactly — the cursor is an optimization, `offset` is the spec.
    #[test]
    fn stream_matches_pattern_offset_spec() {
        let cases = [
            (AddressPattern::unit(8), 1 << 12, 8u32),
            (AddressPattern::Strided { stride: 264 }, 1 << 12, 8),
            (AddressPattern::Strided { stride: 1 << 13 }, 1 << 12, 8),
            (AddressPattern::Random, 1 << 10, 8),
            (
                AddressPattern::Stencil {
                    points: 3,
                    plane: 1000,
                },
                1 << 12,
                8,
            ),
            (
                AddressPattern::Stencil {
                    points: 7,
                    plane: 1 << 14,
                },
                1 << 12,
                4,
            ),
            (AddressPattern::unit(8), 8, 8),
        ];
        for (pattern, size, elem) in cases {
            let seed = 0xDEAD_BEEF;
            let mut cursor = Cursor::new(pattern, size, elem, seed);
            for k in 0..10_000u64 {
                assert_eq!(
                    cursor.next_offset(),
                    pattern.offset(k, size, elem, seed),
                    "{pattern:?} diverges from the spec at k={k}"
                );
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let (p, blk) = two_instr_program();
        let collect = |seed| {
            let mut s = AccessStream::new(&p, blk, seed);
            let mut v = Vec::new();
            s.run_iterations(50, &mut |a| v.push(a.addr));
            v
        };
        assert_eq!(collect(5), collect(5));
    }

    #[test]
    fn distinct_seeds_change_random_streams_only() {
        let mut b = ProgramBuilder::default();
        let r = b.region("a", 1 << 16, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "rand",
            SourceLoc::new("t.c", 2, "g"),
            1,
            vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::Random)],
        ));
        let p = b.build().unwrap();
        let collect = |seed| {
            let mut s = AccessStream::new(&p, blk, seed);
            let mut v = Vec::new();
            s.run_iterations(100, &mut |a| v.push(a.addr));
            v
        };
        assert_ne!(collect(1), collect(2));
        assert_eq!(collect(3), collect(3));
    }

    #[test]
    fn ring_chunked_stream_equals_direct_stream() {
        let (p, blk) = two_instr_program();
        let iters = 1000u64;
        let mut direct = Vec::new();
        AccessStream::new(&p, blk, 9).run_iterations(iters, &mut |a| direct.push(a));

        for cap in [3usize, 7, 64, 100_000] {
            let mut s = AccessStream::new(&p, blk, 9);
            let mut ring = AccessRing::with_capacity(cap);
            let mut chunked = Vec::new();
            let mut left = iters;
            while left > 0 {
                let n = s.fill_ring(&mut ring, left);
                assert!(n > 0, "cap {cap} made no progress");
                assert!(ring.len() <= ring.capacity());
                chunked.extend_from_slice(ring.as_slice());
                ring.clear();
                left -= n;
            }
            assert_eq!(chunked, direct, "cap {cap} changed the stream");
            assert!(ring.peak() <= cap);
            assert!(ring.peak() > 0);
        }
    }

    #[test]
    fn ring_backpressure_stops_at_capacity() {
        let (p, blk) = two_instr_program();
        // 3 refs per iteration; capacity 7 fits exactly 2 iterations.
        let mut s = AccessStream::new(&p, blk, 0);
        assert_eq!(s.refs_per_iteration(), 3);
        let mut ring = AccessRing::with_capacity(7);
        assert_eq!(s.fill_ring(&mut ring, 100), 2);
        assert_eq!(ring.len(), 6);
        // Full (for this iteration size): no progress until drained.
        assert_eq!(s.fill_ring(&mut ring, 100), 0);
        ring.clear();
        assert_eq!(s.fill_ring(&mut ring, 1), 1);
        assert_eq!(ring.peak(), 6);
    }

    #[test]
    fn fp_only_block_fills_ring_with_nothing() {
        let mut b = ProgramBuilder::default();
        b.region("unused", 64, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "fp",
            SourceLoc::new("t.c", 4, "h"),
            10,
            vec![Instruction::fp(FpOp::Add)],
        ));
        let p = b.build().unwrap();
        let mut s = AccessStream::new(&p, blk, 0);
        let mut ring = AccessRing::with_capacity(8);
        // All iterations complete trivially; none buffer anything.
        assert_eq!(s.fill_ring(&mut ring, 10), 10);
        assert!(ring.is_empty());
    }

    #[test]
    fn fp_only_block_emits_nothing() {
        let mut b = ProgramBuilder::default();
        b.region("unused", 64, 8);
        let blk = b.block(crate::block::BasicBlock::new(
            BlockId(0),
            "fp",
            SourceLoc::new("t.c", 3, "h"),
            100,
            vec![Instruction::fp(FpOp::Mul).with_repeat(8)],
        ));
        let p = b.build().unwrap();
        let mut s = AccessStream::new(&p, blk, 0);
        assert_eq!(s.accesses_per_invocation(), 0);
        let mut n = 0;
        s.run_invocation(&mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
