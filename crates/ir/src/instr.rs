//! Instructions: the unit at which the paper extrapolates.
//!
//! Section IV of the paper is explicit that, for extrapolation, "the trace
//! file includes more detailed information ... and therefore contains data
//! for each *instruction* of all basic blocks executed by the task". Each
//! instruction contributes entries to the block's feature vectors: memory
//! instructions supply operation counts, reference sizes, and (after cache
//! simulation) per-level hit rates; floating-point instructions supply the
//! amount and composition of FP work.

use serde::{Deserialize, Serialize};

use crate::ids::RegionId;
use crate::pattern::AddressPattern;

/// Direction of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// A load (read) reference.
    Load,
    /// A store (write) reference.
    Store,
}

/// Floating-point operation classes, the "composition" part of feature
/// element (1) in Section III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpOp {
    /// Addition/subtraction.
    Add,
    /// Multiplication.
    Mul,
    /// Division (much slower on real pipelines; machine profiles rate it
    /// separately).
    Div,
    /// Square root.
    Sqrt,
    /// Fused multiply-add; counts as two FLOPs.
    Fma,
}

impl FpOp {
    /// Number of floating-point operations one execution performs.
    #[inline]
    pub fn flops(self) -> u64 {
        match self {
            FpOp::Fma => 2,
            _ => 1,
        }
    }
}

/// What an instruction does each time it executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstrKind {
    /// A memory reference into `region` following `pattern`.
    Mem {
        /// Load or store.
        op: MemOp,
        /// Region the reference addresses.
        region: RegionId,
        /// Bytes moved per reference (feature element (3), "size of its
        /// memory references in bytes").
        bytes: u32,
        /// Address-generation behaviour.
        pattern: AddressPattern,
    },
    /// A floating-point operation.
    Fp {
        /// Operation class.
        op: FpOp,
    },
}

/// One static instruction of a basic block.
///
/// `repeat` is the number of times the instruction executes per loop
/// iteration of its block (an unroll factor); total dynamic executions are
/// `block invocations × block iterations × repeat`. Proxy apps use `repeat`
/// to give different instructions of the *same* block different scaling
/// behaviour, which is what the paper's Figure 3 illustrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation performed.
    pub kind: InstrKind,
    /// Executions per block iteration (≥ 1 to execute at all; 0 is allowed
    /// and models an instruction that is compiled in but never taken at this
    /// scale).
    pub repeat: u32,
}

impl Instruction {
    /// A memory instruction executing once per iteration.
    pub fn mem(op: MemOp, region: RegionId, bytes: u32, pattern: AddressPattern) -> Self {
        Self {
            kind: InstrKind::Mem {
                op,
                region,
                bytes,
                pattern,
            },
            repeat: 1,
        }
    }

    /// A floating-point instruction executing once per iteration.
    pub fn fp(op: FpOp) -> Self {
        Self {
            kind: InstrKind::Fp { op },
            repeat: 1,
        }
    }

    /// Sets the per-iteration repeat count (builder style).
    pub fn with_repeat(mut self, repeat: u32) -> Self {
        self.repeat = repeat;
        self
    }

    /// True if this is a memory reference.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InstrKind::Mem { .. })
    }

    /// True if this is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(
            self.kind,
            InstrKind::Mem {
                op: MemOp::Store,
                ..
            }
        )
    }

    /// FLOPs contributed per single execution (0 for memory instructions).
    #[inline]
    pub fn flops_per_exec(&self) -> u64 {
        match self.kind {
            InstrKind::Fp { op } => op.flops(),
            InstrKind::Mem { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_counts_two_flops() {
        assert_eq!(FpOp::Fma.flops(), 2);
        assert_eq!(FpOp::Add.flops(), 1);
        assert_eq!(FpOp::Div.flops(), 1);
    }

    #[test]
    fn builders_set_fields() {
        let i =
            Instruction::mem(MemOp::Load, RegionId(3), 8, AddressPattern::unit(8)).with_repeat(4);
        assert!(i.is_mem());
        assert!(!i.is_store());
        assert_eq!(i.repeat, 4);
        assert_eq!(i.flops_per_exec(), 0);

        let f = Instruction::fp(FpOp::Fma).with_repeat(2);
        assert!(!f.is_mem());
        assert_eq!(f.flops_per_exec(), 2);
    }

    #[test]
    fn store_detection() {
        let s = Instruction::mem(MemOp::Store, RegionId(0), 8, AddressPattern::Random);
        assert!(s.is_store());
    }

    #[test]
    fn serde_roundtrip() {
        let i = Instruction::mem(
            MemOp::Load,
            RegionId(1),
            4,
            AddressPattern::Stencil {
                points: 3,
                plane: 64,
            },
        );
        let s = serde_json::to_string(&i).unwrap();
        let back: Instruction = serde_json::from_str(&s).unwrap();
        assert_eq!(back, i);
    }
}
