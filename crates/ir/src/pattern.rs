//! Address-generation patterns for memory instructions.
//!
//! The paper's machine profile (the MultiMAPS surface, its Figure 1) is
//! indexed by how an instruction's references behave — "a stride-one load
//! access pattern from L1 cache can perform significantly faster than a
//! random-stride load from main memory". These patterns are the IR-level
//! source of that behaviour: each memory instruction owns one pattern, and
//! [`crate::stream::AccessStream`] turns the pattern into concrete effective
//! addresses inside the instruction's region.

use serde::{Deserialize, Serialize};

use crate::rng::SplitMix64;

/// How a memory instruction's effective addresses walk its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Constant-stride walk: access `k` touches `base + (k * stride) mod size`.
    ///
    /// `stride = elem_bytes` gives the classic unit-stride sweep; larger
    /// strides model column accesses or interleaved structures and defeat
    /// spatial locality once the stride exceeds the line size.
    Strided {
        /// Stride between consecutive accesses, in bytes. Must be positive.
        stride: u64,
    },
    /// Uniformly random element accesses over the whole region — models
    /// particle gathers, indirect indexing, hash probing. Defeats spatial
    /// *and* temporal locality for regions larger than the cache.
    Random,
    /// A multi-point stencil sweep: each step touches `points` locations
    /// separated by `plane` bytes (e.g. the ±1, ±nx, ±nx·ny neighbours of a
    /// 3-D grid sweep), then the sweep cursor advances by one element.
    /// Captures the "several streams with one large stride" signature of
    /// structured-grid field solvers.
    Stencil {
        /// Number of points touched per step (≥ 1).
        points: u32,
        /// Byte distance between consecutive stencil planes.
        plane: u64,
    },
}

impl AddressPattern {
    /// Unit-stride helper for the common case.
    pub fn unit(elem_bytes: u32) -> Self {
        AddressPattern::Strided {
            stride: u64::from(elem_bytes),
        }
    }

    /// Generates the offset (relative to the region base) of access number
    /// `k` for this pattern, inside a region of `size` bytes holding
    /// `elem_bytes`-sized elements.
    ///
    /// The mapping is a pure function of `(pattern, k, seed)`, which makes
    /// address streams reproducible without storing per-instruction cursors.
    ///
    /// Accesses are element-aligned, and for any `size >= elem_bytes` the
    /// returned offset satisfies `offset + elem_bytes <= size`.
    #[inline]
    pub fn offset(&self, k: u64, size: u64, elem_bytes: u32, seed: u64) -> u64 {
        let elem = u64::from(elem_bytes);
        debug_assert!(size >= elem);
        let elems = size / elem;
        match *self {
            AddressPattern::Strided { stride } => {
                // Walk in element units so every access stays aligned even
                // when `stride` does not divide `size`.
                let stride_elems = (stride / elem).max(1);
                ((k.wrapping_mul(stride_elems)) % elems) * elem
            }
            AddressPattern::Random => {
                let mut h = SplitMix64::new(seed ^ SplitMix64::mix(k));
                h.next_below(elems) * elem
            }
            AddressPattern::Stencil { points, plane } => {
                let points = u64::from(points.max(1));
                let step = k / points; // sweep position
                let point = k % points; // which stencil point
                let plane_elems = (plane / elem).max(1);
                let off = (step + point * plane_elems) % elems;
                off * elem
            }
        }
    }

    /// Short classification label used in trace files and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            AddressPattern::Strided { .. } => "strided",
            AddressPattern::Random => "random",
            AddressPattern::Stencil { .. } => "stencil",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZE: u64 = 1 << 16; // 64 KiB
    const ELEM: u32 = 8;

    #[test]
    fn unit_stride_walks_sequentially_and_wraps() {
        let p = AddressPattern::unit(ELEM);
        assert_eq!(p.offset(0, SIZE, ELEM, 0), 0);
        assert_eq!(p.offset(1, SIZE, ELEM, 0), 8);
        assert_eq!(p.offset(2, SIZE, ELEM, 0), 16);
        let elems = SIZE / u64::from(ELEM);
        assert_eq!(p.offset(elems, SIZE, ELEM, 0), 0, "wraps at region end");
    }

    #[test]
    fn large_stride_skips_lines() {
        let p = AddressPattern::Strided { stride: 256 };
        assert_eq!(p.offset(0, SIZE, ELEM, 0), 0);
        assert_eq!(p.offset(1, SIZE, ELEM, 0), 256);
    }

    #[test]
    fn stride_smaller_than_element_degrades_to_unit() {
        let p = AddressPattern::Strided { stride: 1 };
        assert_eq!(p.offset(3, SIZE, ELEM, 0), 24);
    }

    #[test]
    fn random_is_in_bounds_and_seed_dependent() {
        let p = AddressPattern::Random;
        for k in 0..1000 {
            let off = p.offset(k, SIZE, ELEM, 7);
            assert!(off + u64::from(ELEM) <= SIZE);
            assert_eq!(off % u64::from(ELEM), 0, "element aligned");
        }
        let same = (0..100)
            .filter(|&k| p.offset(k, SIZE, ELEM, 1) == p.offset(k, SIZE, ELEM, 2))
            .count();
        assert!(same < 5, "different seeds should give different streams");
    }

    #[test]
    fn random_is_reproducible() {
        let p = AddressPattern::Random;
        let a: Vec<u64> = (0..64).map(|k| p.offset(k, SIZE, ELEM, 9)).collect();
        let b: Vec<u64> = (0..64).map(|k| p.offset(k, SIZE, ELEM, 9)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn stencil_touches_separated_planes() {
        let p = AddressPattern::Stencil {
            points: 3,
            plane: 1024,
        };
        // First step: three points at 0, 1024, 2048.
        assert_eq!(p.offset(0, SIZE, ELEM, 0), 0);
        assert_eq!(p.offset(1, SIZE, ELEM, 0), 1024);
        assert_eq!(p.offset(2, SIZE, ELEM, 0), 2048);
        // Second step: cursor advanced by one element.
        assert_eq!(p.offset(3, SIZE, ELEM, 0), 8);
        assert_eq!(p.offset(4, SIZE, ELEM, 0), 1032);
    }

    #[test]
    fn stencil_with_zero_points_is_clamped() {
        let p = AddressPattern::Stencil {
            points: 0,
            plane: 64,
        };
        // Must not panic (division by zero) and must stay in bounds.
        for k in 0..32 {
            assert!(p.offset(k, SIZE, ELEM, 0) < SIZE);
        }
    }

    #[test]
    fn tiny_region_never_overflows() {
        for pat in [
            AddressPattern::unit(ELEM),
            AddressPattern::Random,
            AddressPattern::Strided { stride: 4096 },
            AddressPattern::Stencil {
                points: 7,
                plane: 8192,
            },
        ] {
            for k in 0..100 {
                let off = pat.offset(k, 8, ELEM, 3);
                assert_eq!(off, 0, "single-element region has only offset 0");
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AddressPattern::Random.label(), "random");
        assert_eq!(AddressPattern::unit(8).label(), "strided");
        assert_eq!(
            AddressPattern::Stencil {
                points: 2,
                plane: 8
            }
            .label(),
            "stencil"
        );
    }
}
