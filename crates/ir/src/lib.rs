//! # xtrace-ir — program intermediate representation
//!
//! The paper's tracing pipeline (its Figure 2) starts from an *instrumented
//! binary*: PEBIL rewrites every memory instruction of a compiled executable
//! so that, at run time, the application emits its memory address stream,
//! which is consumed on-the-fly by a cache simulator.
//!
//! This reproduction has no x86 binaries to instrument, so the equivalent
//! starting point is an explicit program representation. A [`Program`] is a
//! set of [`region::MemoryRegion`]s (the data arrays a rank owns) plus a set
//! of [`block::BasicBlock`]s, each holding a list of [`instr::Instruction`]s.
//! Memory instructions carry an [`pattern::AddressPattern`] describing how
//! their effective addresses walk a region; interpreting a block with
//! [`stream::AccessStream`] reproduces exactly what PEBIL's instrumentation
//! produces: a deterministic per-instruction memory address stream, plus
//! per-instruction operation counts for the non-memory work.
//!
//! Proxy applications (crate `xtrace-apps`) construct one `Program` per MPI
//! rank as a function of `(rank, nranks, problem size)`; strong scaling is
//! therefore visible as region sizes and iteration counts that shrink (or,
//! for reduction-tree work, grow logarithmically) with the core count —
//! the behaviours the paper's canonical forms must capture.
//!
//! Everything here is deterministic: the same program yields bit-identical
//! address streams on every run, which the integration tests rely on.

#![warn(missing_docs)]

pub mod block;
pub mod display;
pub mod ids;
pub mod instr;
pub mod pattern;
pub mod program;
pub mod region;
pub mod rng;
pub mod stream;

pub use block::{BasicBlock, SourceLoc};
pub use display::render_program;
pub use ids::{BlockId, InstrId, RegionId};
pub use instr::{FpOp, InstrKind, Instruction, MemOp};
pub use pattern::AddressPattern;
pub use program::{Program, ProgramBuilder, ProgramError};
pub use region::MemoryRegion;
pub use stream::{AccessRing, AccessStream, MemAccess};
