//! Deterministic pseudo-random number generation for address streams.
//!
//! Random-access patterns (pointer chasing, particle gathers) need a stream
//! of pseudo-random offsets that is (a) fast enough to sit inside the
//! address-generation hot loop and (b) bit-stable across runs, platforms,
//! and library versions — the extrapolation experiments compare traces
//! collected in separate processes, so any nondeterminism would show up as
//! spurious "scaling behaviour". A hand-rolled SplitMix64 satisfies both;
//! its output constants are fixed by the published algorithm.

use serde::{Deserialize, Serialize};

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14 appendix).
///
/// Passes BigCrush when used as a 64-bit generator and requires only one
/// multiply-xor-shift round per output, making it cheap enough for per-access
/// use in [`crate::stream::AccessStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire 2016) without the
    /// rejection step; the bias is at most `bound / 2^64`, far below anything
    /// observable in a cache simulation, and the cost is one multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Mixes a 64-bit value through one SplitMix64 finalization round.
    ///
    /// Used to derive well-separated seeds from structured inputs such as
    /// `(rank, block, instruction)` triples.
    #[inline]
    pub fn mix(v: u64) -> u64 {
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical SplitMix64
        // implementation (used e.g. to seed xoshiro generators).
        let mut rng = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423
            ]
        );
    }

    #[test]
    fn is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 17, 1 << 20, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn mix_separates_adjacent_inputs() {
        let a = SplitMix64::mix(0);
        let b = SplitMix64::mix(1);
        assert_ne!(a, b);
        // Hamming distance between mixes of adjacent inputs should be large.
        assert!((a ^ b).count_ones() > 16);
    }
}
