//! Memory regions: the data arrays a rank owns.
//!
//! A region models one logical allocation (a field array, a particle list,
//! an element-matrix workspace). Its *size* is the knob through which strong
//! scaling reaches the cache simulator: proxy applications size their
//! per-rank regions as `global_bytes / nranks` (plus ghost halos), so as the
//! core count grows a region's footprint drops through the target machine's
//! cache levels — exactly the effect the paper's Table II reports.

use serde::{Deserialize, Serialize};

use crate::ids::RegionId;

/// A contiguous per-rank memory region.
///
/// Regions are laid out back-to-back (page-aligned) in a rank-private
/// virtual address space by [`crate::ProgramBuilder::build`]; instructions address
/// them via [`crate::pattern::AddressPattern`]s relative to the region base.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Identifier within the owning program.
    pub id: RegionId,
    /// Human-readable name (e.g. `"displ"`, `"particles"`), carried through
    /// to trace files so experiment output is interpretable.
    pub name: String,
    /// Footprint in bytes. Must be positive and a multiple of `elem_bytes`.
    pub bytes: u64,
    /// Element granularity in bytes (typically 4 or 8).
    pub elem_bytes: u32,
}

impl MemoryRegion {
    /// Alignment of region base addresses: a 4 KiB page, so that distinct
    /// regions never share a cache line and per-region statistics stay
    /// attributable.
    pub const BASE_ALIGN: u64 = 4096;

    /// Inter-region stagger (two 64-byte lines per region index) applied on
    /// top of page alignment — the array-padding idiom that keeps
    /// concurrently streamed regions off the same cache sets.
    pub const STAGGER: u64 = 128;

    /// Creates a region description.
    ///
    /// The size is rounded *up* to a whole number of elements so that a
    /// caller computing `global_bytes / nranks` never produces a torn
    /// element at high core counts.
    pub fn new(id: RegionId, name: impl Into<String>, bytes: u64, elem_bytes: u32) -> Self {
        assert!(elem_bytes > 0, "element size must be positive");
        let bytes = bytes.max(u64::from(elem_bytes));
        let rem = bytes % u64::from(elem_bytes);
        let bytes = if rem == 0 {
            bytes
        } else {
            bytes + u64::from(elem_bytes) - rem
        };
        Self {
            id,
            name: name.into(),
            bytes,
            elem_bytes,
        }
    }

    /// Number of elements in the region.
    #[inline]
    pub fn elements(&self) -> u64 {
        self.bytes / u64::from(self.elem_bytes)
    }

    /// Size of the region rounded up to base alignment, i.e. the amount of
    /// address space the layout reserves for it.
    #[inline]
    pub fn padded_bytes(&self) -> u64 {
        let a = Self::BASE_ALIGN;
        self.bytes.div_ceil(a) * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_size_up_to_elements() {
        let r = MemoryRegion::new(RegionId(0), "a", 1001, 8);
        assert_eq!(r.bytes, 1008);
        assert_eq!(r.elements(), 126);
    }

    #[test]
    fn exact_multiple_is_unchanged() {
        let r = MemoryRegion::new(RegionId(0), "a", 4096, 8);
        assert_eq!(r.bytes, 4096);
        assert_eq!(r.elements(), 512);
    }

    #[test]
    fn zero_bytes_becomes_one_element() {
        let r = MemoryRegion::new(RegionId(0), "tiny", 0, 8);
        assert_eq!(r.bytes, 8);
        assert_eq!(r.elements(), 1);
    }

    #[test]
    fn padded_bytes_is_page_multiple() {
        let r = MemoryRegion::new(RegionId(0), "a", 5000, 4);
        assert_eq!(r.padded_bytes() % MemoryRegion::BASE_ALIGN, 0);
        assert!(r.padded_bytes() >= r.bytes);
        assert_eq!(r.padded_bytes(), 8192);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn zero_elem_size_panics() {
        MemoryRegion::new(RegionId(0), "bad", 64, 0);
    }
}
