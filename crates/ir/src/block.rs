//! Basic blocks: straight-line instruction sequences with a trip count.
//!
//! The application signature is organised per basic block (Section III-A
//! item list: source location, FP work, memory references, reference sizes,
//! hit rates). A block here is a loop body: invoking it runs `iterations`
//! trips of its instruction list. Proxy apps set `iterations` per rank, so a
//! block whose trip count is `elements_per_rank` scales like `1/P` while a
//! reduction-combine block scales like `log2(P)` — the raw material for the
//! canonical-form fits.

use serde::{Deserialize, Serialize};

use crate::ids::BlockId;
use crate::instr::Instruction;

/// Source-code provenance of a block, item (1) of the paper's per-block
/// trace contents ("the location of the block in the source code and
/// executable").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceLoc {
    /// Source file the block came from.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Enclosing function.
    pub function: String,
}

impl SourceLoc {
    /// Creates a source location.
    pub fn new(file: impl Into<String>, line: u32, function: impl Into<String>) -> Self {
        Self {
            file: file.into(),
            line,
            function: function.into(),
        }
    }
}

impl std::fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} ({})", self.file, self.line, self.function)
    }
}

/// A basic block: a named, located, straight-line body executed
/// `iterations` times per invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Identifier within the owning program.
    pub id: BlockId,
    /// Stable name (e.g. `"element-matmul"`); experiment binaries select
    /// blocks by name, and extrapolation matches blocks across core counts
    /// by name rather than by id so programs built for different `P` align.
    pub name: String,
    /// Where the block "lives" in the proxy application's pseudo-source.
    pub source: SourceLoc,
    /// Loop trip count per invocation.
    pub iterations: u64,
    /// Instruction list executed each iteration, in order.
    pub instrs: Vec<Instruction>,
    /// Static instruction-level parallelism estimate (independent ops per
    /// cycle the block's dependence structure allows). One of the features
    /// the paper lists as extrapolated ("data dependencies, ILP"); it is
    /// normally constant across core counts, exercising the constant
    /// canonical form.
    pub ilp: f64,
}

impl BasicBlock {
    /// Creates a block with ILP 1.0 (fully serial dependence chain).
    pub fn new(
        id: BlockId,
        name: impl Into<String>,
        source: SourceLoc,
        iterations: u64,
        instrs: Vec<Instruction>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            source,
            iterations,
            instrs,
            ilp: 1.0,
        }
    }

    /// Sets the ILP estimate (builder style).
    pub fn with_ilp(mut self, ilp: f64) -> Self {
        assert!(ilp > 0.0, "ILP must be positive");
        self.ilp = ilp;
        self
    }

    /// Dynamic memory references one invocation generates.
    pub fn mem_refs_per_invocation(&self) -> u64 {
        self.iterations
            * self
                .instrs
                .iter()
                .filter(|i| i.is_mem())
                .map(|i| u64::from(i.repeat))
                .sum::<u64>()
    }

    /// Dynamic FLOPs one invocation generates.
    pub fn flops_per_invocation(&self) -> u64 {
        self.iterations
            * self
                .instrs
                .iter()
                .map(|i| i.flops_per_exec() * u64::from(i.repeat))
                .sum::<u64>()
    }

    /// Bytes moved to/from memory per invocation.
    pub fn bytes_per_invocation(&self) -> u64 {
        self.iterations
            * self
                .instrs
                .iter()
                .filter_map(|i| match i.kind {
                    crate::instr::InstrKind::Mem { bytes, .. } => {
                        Some(u64::from(bytes) * u64::from(i.repeat))
                    }
                    _ => None,
                })
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegionId;
    use crate::instr::{FpOp, MemOp};
    use crate::pattern::AddressPattern;

    fn sample_block() -> BasicBlock {
        BasicBlock::new(
            BlockId(0),
            "body",
            SourceLoc::new("solver.f90", 120, "update"),
            10,
            vec![
                Instruction::mem(MemOp::Load, RegionId(0), 8, AddressPattern::unit(8)),
                Instruction::mem(MemOp::Load, RegionId(1), 8, AddressPattern::unit(8))
                    .with_repeat(2),
                Instruction::mem(MemOp::Store, RegionId(0), 8, AddressPattern::unit(8)),
                Instruction::fp(FpOp::Fma).with_repeat(3),
                Instruction::fp(FpOp::Add),
            ],
        )
    }

    #[test]
    fn counts_per_invocation() {
        let b = sample_block();
        // 10 iterations × (1 + 2 + 1) mem instructions.
        assert_eq!(b.mem_refs_per_invocation(), 40);
        // 10 × (3 FMA × 2 flops + 1 add).
        assert_eq!(b.flops_per_invocation(), 70);
        // 10 × (1×8 + 2×8 + 1×8) bytes.
        assert_eq!(b.bytes_per_invocation(), 320);
    }

    #[test]
    fn empty_block_counts_zero() {
        let b = BasicBlock::new(
            BlockId(1),
            "nop",
            SourceLoc::new("x.c", 1, "f"),
            1000,
            vec![],
        );
        assert_eq!(b.mem_refs_per_invocation(), 0);
        assert_eq!(b.flops_per_invocation(), 0);
        assert_eq!(b.bytes_per_invocation(), 0);
    }

    #[test]
    fn source_loc_displays() {
        let s = SourceLoc::new("a.f90", 42, "main");
        assert_eq!(s.to_string(), "a.f90:42 (main)");
    }

    #[test]
    fn ilp_builder() {
        let b = sample_block().with_ilp(2.5);
        assert_eq!(b.ilp, 2.5);
    }

    #[test]
    #[should_panic(expected = "ILP")]
    fn nonpositive_ilp_panics() {
        sample_block().with_ilp(0.0);
    }
}
