//! Human-readable program dumps.
//!
//! Downstream users exploring a proxy (or debugging their own [`SpmdApp`]
//! implementation) need to *see* what a rank executes; this module renders
//! a [`Program`] as an annotated listing — regions with sizes, blocks with
//! trip counts, instructions with patterns and per-invocation totals.
//!
//! [`SpmdApp`]: https://docs.rs/xtrace-spmd

use std::fmt::Write as _;

use crate::instr::{FpOp, InstrKind, MemOp};
use crate::program::Program;

/// Formats a byte count with a binary-prefix unit.
fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Renders the full annotated listing of a program.
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program: {} regions, {} blocks, {} footprint",
        p.regions().len(),
        p.blocks().len(),
        human_bytes(p.footprint_bytes())
    );
    let _ = writeln!(out, "regions:");
    for r in p.regions() {
        let _ = writeln!(
            out,
            "  [{:>2}] {:<14} {:>10}  ({} x {} B elems, base {:#x})",
            r.id.0,
            r.name,
            human_bytes(r.bytes),
            r.elements(),
            r.elem_bytes,
            p.region_base(r.id),
        );
    }
    let _ = writeln!(out, "blocks:");
    for b in p.blocks() {
        let _ = writeln!(
            out,
            "  [{:>2}] {:<20} {} iters/invocation, ilp {:.1}  ({})",
            b.id.0, b.name, b.iterations, b.ilp, b.source
        );
        for (i, ins) in b.instrs.iter().enumerate() {
            let desc = match ins.kind {
                InstrKind::Mem {
                    op,
                    region,
                    bytes,
                    pattern,
                } => {
                    let verb = match op {
                        MemOp::Load => "load ",
                        MemOp::Store => "store",
                    };
                    format!(
                        "{verb} {:<14} {:>2} B {:<8}",
                        p.region(region).name,
                        bytes,
                        pattern.label()
                    )
                }
                InstrKind::Fp { op } => {
                    let name = match op {
                        FpOp::Add => "fadd",
                        FpOp::Mul => "fmul",
                        FpOp::Div => "fdiv",
                        FpOp::Sqrt => "fsqrt",
                        FpOp::Fma => "fma",
                    };
                    format!("{name:<31}")
                }
            };
            let _ = writeln!(out, "       i{i:<2} {desc} x{}", ins.repeat);
        }
        let _ = writeln!(
            out,
            "       => {} refs, {} flops, {} moved per invocation",
            b.mem_refs_per_invocation(),
            b.flops_per_invocation(),
            human_bytes(b.bytes_per_invocation()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BasicBlock, SourceLoc};
    use crate::ids::BlockId;
    use crate::instr::Instruction;
    use crate::pattern::AddressPattern;

    fn program() -> Program {
        let mut b = Program::builder();
        let field = b.region("field", 48 * 1024 * 1024, 8);
        let table = b.region("table", 2048, 8);
        b.block(BasicBlock::new(
            BlockId(0),
            "sweep",
            SourceLoc::new("kernel.f90", 10, "sweep"),
            1000,
            vec![
                Instruction::mem(MemOp::Load, field, 8, AddressPattern::unit(8)).with_repeat(2),
                Instruction::mem(MemOp::Load, table, 8, AddressPattern::Random),
                Instruction::fp(FpOp::Fma).with_repeat(4),
                Instruction::mem(MemOp::Store, field, 8, AddressPattern::unit(8)),
            ],
        ));
        b.build().unwrap()
    }

    #[test]
    fn listing_mentions_every_entity() {
        let s = render_program(&program());
        for needle in [
            "2 regions",
            "field",
            "table",
            "48.0 MiB",
            "sweep",
            "kernel.f90:10",
            "load ",
            "store",
            "random",
            "strided",
            "fma",
            "x4",
            "4000 refs",
            "8000 flops",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(48 * 1024 * 1024), "48.0 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn per_invocation_totals_are_consistent() {
        let p = program();
        let s = render_program(&p);
        let b = &p.blocks()[0];
        assert!(s.contains(&format!("{} refs", b.mem_refs_per_invocation())));
        assert!(s.contains(&format!("{} flops", b.flops_per_invocation())));
    }
}
