//! Typed identifiers for IR entities.
//!
//! Raw `usize` indices are easy to transpose (a block index used as a region
//! index compiles fine and corrupts a simulation silently). Newtypes make
//! each index space distinct at zero runtime cost.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a plain index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a [`crate::region::MemoryRegion`] within a [`crate::Program`].
    RegionId
);
id_type!(
    /// Identifies a [`crate::block::BasicBlock`] within a [`crate::Program`].
    BlockId
);
id_type!(
    /// Identifies an [`crate::instr::Instruction`] *within its basic block*.
    ///
    /// Instruction ids restart at zero in each block; a globally unique
    /// instruction key is the pair `(BlockId, InstrId)`.
    InstrId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(RegionId(7).index(), 7);
        assert_eq!(BlockId::from(3u32), BlockId(3));
        assert_eq!(InstrId(0).index(), 0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut v = vec![BlockId(2), BlockId(0), BlockId(1)];
        v.sort();
        assert_eq!(v, vec![BlockId(0), BlockId(1), BlockId(2)]);
        let set: std::collections::HashSet<_> = v.into_iter().collect();
        assert!(set.contains(&BlockId(1)));
    }

    #[test]
    fn ids_display_their_space() {
        assert_eq!(RegionId(4).to_string(), "RegionId(4)");
        assert_eq!(InstrId(9).to_string(), "InstrId(9)");
    }

    #[test]
    fn ids_serialize_transparently() {
        let json = serde_json::to_string(&BlockId(12)).unwrap();
        assert_eq!(json, "12");
        let back: BlockId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, BlockId(12));
    }
}
