//! Programs: the per-rank unit the tracer interprets.
//!
//! A [`Program`] bundles the memory regions a rank owns with the basic
//! blocks it executes. It corresponds to "the compiled and linked
//! executable" of the paper *as seen by one MPI task*: proxy applications
//! build one per `(rank, nranks)` pair, and the tracer interprets it while
//! feeding the cache simulator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::block::BasicBlock;
use crate::ids::{BlockId, RegionId};
use crate::region::MemoryRegion;

/// Validation failures when assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A memory instruction references a region id that does not exist.
    UnknownRegion {
        /// Offending block.
        block: BlockId,
        /// The dangling region reference.
        region: RegionId,
    },
    /// Two blocks share a name; extrapolation matches blocks by name across
    /// core counts, so names must be unique.
    DuplicateBlockName(String),
    /// Two regions share a name.
    DuplicateRegionName(String),
    /// A memory instruction's reference size exceeds its region size.
    RefWiderThanRegion {
        /// Offending block.
        block: BlockId,
        /// Region that is too small.
        region: RegionId,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::UnknownRegion { block, region } => {
                write!(f, "block {block} references unknown region {region}")
            }
            ProgramError::DuplicateBlockName(n) => write!(f, "duplicate block name {n:?}"),
            ProgramError::DuplicateRegionName(n) => write!(f, "duplicate region name {n:?}"),
            ProgramError::RefWiderThanRegion { block, region } => {
                write!(
                    f,
                    "block {block} has a reference wider than region {region}"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated per-rank program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    regions: Vec<MemoryRegion>,
    blocks: Vec<BasicBlock>,
    /// Region base addresses in the rank-private virtual address space,
    /// parallel to `regions`.
    region_bases: Vec<u64>,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// All regions, ordered by id.
    #[inline]
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// All blocks, ordered by id.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Looks up a region.
    #[inline]
    pub fn region(&self, id: RegionId) -> &MemoryRegion {
        &self.regions[id.index()]
    }

    /// Looks up a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Finds a block by name.
    pub fn block_by_name(&self, name: &str) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Base virtual address of a region. Regions start at a nonzero base
    /// (so address 0 never appears) and are page-aligned; see
    /// [`MemoryRegion::BASE_ALIGN`].
    #[inline]
    pub fn region_base(&self, id: RegionId) -> u64 {
        self.region_bases[id.index()]
    }

    /// Total footprint of the rank: sum of all region sizes. This is the
    /// per-task working-set-size feature at program granularity.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }
}

/// Incremental, validating builder for [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    regions: Vec<MemoryRegion>,
    blocks: Vec<BasicBlock>,
}

impl ProgramBuilder {
    /// Adds a region and returns its id.
    pub fn region(&mut self, name: impl Into<String>, bytes: u64, elem_bytes: u32) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions
            .push(MemoryRegion::new(id, name, bytes, elem_bytes));
        id
    }

    /// Adds a block and returns its id. The block's `id` field is assigned
    /// here, overriding whatever the caller set.
    pub fn block(&mut self, mut block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        block.id = id;
        self.blocks.push(block);
        id
    }

    /// Validates and finalizes the program, computing the region layout.
    pub fn build(self) -> Result<Program, ProgramError> {
        let mut region_names: HashMap<&str, ()> = HashMap::new();
        for r in &self.regions {
            if region_names.insert(r.name.as_str(), ()).is_some() {
                return Err(ProgramError::DuplicateRegionName(r.name.clone()));
            }
        }
        let mut block_names: HashMap<&str, ()> = HashMap::new();
        for b in &self.blocks {
            if block_names.insert(b.name.as_str(), ()).is_some() {
                return Err(ProgramError::DuplicateBlockName(b.name.clone()));
            }
            for i in &b.instrs {
                if let crate::instr::InstrKind::Mem { region, bytes, .. } = i.kind {
                    let Some(r) = self.regions.get(region.index()) else {
                        return Err(ProgramError::UnknownRegion {
                            block: b.id,
                            region,
                        });
                    };
                    if u64::from(bytes) > r.bytes {
                        return Err(ProgramError::RefWiderThanRegion {
                            block: b.id,
                            region,
                        });
                    }
                }
            }
        }

        // Lay regions out back to back, page aligned, starting at one page
        // (so no access ever lands on address zero). Each region is then
        // staggered by two extra cache lines per index — the classic
        // array-padding idiom real HPC codes use so that concurrently
        // streamed arrays do not map to the same cache sets (page-aligned
        // bases would set-alias whenever region sizes are multiples of the
        // set period, collapsing L1 hit rates to zero).
        let mut base = MemoryRegion::BASE_ALIGN;
        let mut region_bases = Vec::with_capacity(self.regions.len());
        for (i, r) in self.regions.iter().enumerate() {
            region_bases.push(base + (i as u64) * MemoryRegion::STAGGER);
            base += r.padded_bytes() + MemoryRegion::BASE_ALIGN;
        }

        Ok(Program {
            regions: self.regions,
            blocks: self.blocks,
            region_bases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SourceLoc;
    use crate::instr::{Instruction, MemOp};
    use crate::pattern::AddressPattern;

    fn block_with_load(name: &str, region: RegionId) -> BasicBlock {
        BasicBlock::new(
            BlockId(0),
            name,
            SourceLoc::new("t.c", 1, "f"),
            4,
            vec![Instruction::mem(
                MemOp::Load,
                region,
                8,
                AddressPattern::unit(8),
            )],
        )
    }

    #[test]
    fn builds_and_lays_out_regions() {
        let mut b = Program::builder();
        let r0 = b.region("a", 100, 8); // pads to 4096
        let r1 = b.region("b", 5000, 8); // pads to 8192
        let r2 = b.region("c", 8, 8);
        b.block(block_with_load("blk", r0));
        let p = b.build().unwrap();

        assert_eq!(p.region_base(r0), 4096);
        assert_eq!(
            p.region_base(r1),
            4096 + 4096 + 4096 + MemoryRegion::STAGGER
        );
        assert_eq!(
            p.region_base(r2),
            4096 + (4096 + 4096) + (8192 + 4096) + 2 * MemoryRegion::STAGGER
        );
        assert!(p.region_base(r0).is_multiple_of(MemoryRegion::BASE_ALIGN));
        // Staggered bases keep regions disjoint.
        assert!(p.region_base(r1) >= p.region_base(r0) + 104);
        assert!(p.region_base(r2) >= p.region_base(r1) + 5000);
        assert_eq!(p.footprint_bytes(), 104 + 5000 + 8);
    }

    #[test]
    fn block_ids_are_assigned_in_order() {
        let mut b = Program::builder();
        let r = b.region("a", 64, 8);
        let id0 = b.block(block_with_load("one", r));
        let id1 = b.block(block_with_load("two", r));
        assert_eq!(id0, BlockId(0));
        assert_eq!(id1, BlockId(1));
        let p = b.build().unwrap();
        assert_eq!(p.block(id1).name, "two");
        assert_eq!(p.block_by_name("one").unwrap().id, id0);
        assert!(p.block_by_name("three").is_none());
    }

    #[test]
    fn rejects_unknown_region() {
        let mut b = Program::builder();
        b.block(block_with_load("blk", RegionId(9)));
        match b.build() {
            Err(ProgramError::UnknownRegion { region, .. }) => assert_eq!(region, RegionId(9)),
            other => panic!("expected UnknownRegion, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_block_names() {
        let mut b = Program::builder();
        let r = b.region("a", 64, 8);
        b.block(block_with_load("dup", r));
        b.block(block_with_load("dup", r));
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::DuplicateBlockName("dup".into())
        );
    }

    #[test]
    fn rejects_duplicate_region_names() {
        let mut b = Program::builder();
        b.region("a", 64, 8);
        b.region("a", 64, 8);
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::DuplicateRegionName("a".into())
        );
    }

    #[test]
    fn rejects_reference_wider_than_region() {
        let mut b = Program::builder();
        let r = b.region("tiny", 8, 8);
        let mut blk = block_with_load("blk", r);
        blk.instrs[0] = Instruction::mem(MemOp::Load, r, 64, AddressPattern::unit(8));
        b.block(blk);
        assert!(matches!(
            b.build(),
            Err(ProgramError::RefWiderThanRegion { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = ProgramError::DuplicateBlockName("x".into());
        assert!(e.to_string().contains("duplicate block name"));
        let e = ProgramError::UnknownRegion {
            block: BlockId(1),
            region: RegionId(2),
        };
        assert!(e.to_string().contains("unknown region"));
    }
}
