//! Property-based tests for the IR crate: address generation must stay in
//! bounds and be deterministic for *any* pattern/region combination the
//! proxy apps could construct.

use proptest::prelude::*;
use xtrace_ir::{AddressPattern, BasicBlock, BlockId, Instruction, MemOp, Program, SourceLoc};

fn arb_pattern() -> impl Strategy<Value = AddressPattern> {
    prop_oneof![
        (1u64..=8192).prop_map(|stride| AddressPattern::Strided { stride }),
        Just(AddressPattern::Random),
        ((1u32..=27), (8u64..=65536))
            .prop_map(|(points, plane)| AddressPattern::Stencil { points, plane }),
    ]
}

proptest! {
    #[test]
    fn pattern_offsets_stay_element_aligned_and_in_bounds(
        pattern in arb_pattern(),
        size_elems in 1u64..100_000,
        elem_bytes in prop_oneof![Just(4u32), Just(8u32), Just(16u32)],
        seed in any::<u64>(),
        k in 0u64..1_000_000,
    ) {
        let size = size_elems * u64::from(elem_bytes);
        let off = pattern.offset(k, size, elem_bytes, seed);
        prop_assert!(off + u64::from(elem_bytes) <= size,
            "offset {off} out of bounds for size {size}");
        prop_assert_eq!(off % u64::from(elem_bytes), 0);
    }

    #[test]
    fn pattern_offsets_are_pure_functions(
        pattern in arb_pattern(),
        size_elems in 1u64..10_000,
        seed in any::<u64>(),
        k in 0u64..100_000,
    ) {
        let size = size_elems * 8;
        prop_assert_eq!(
            pattern.offset(k, size, 8, seed),
            pattern.offset(k, size, 8, seed)
        );
    }

    #[test]
    fn stream_length_is_iterations_times_refs(
        iterations in 1u64..200,
        repeats in proptest::collection::vec(0u32..5, 1..6),
        seed in any::<u64>(),
    ) {
        let mut b = Program::builder();
        let r = b.region("r", 1 << 14, 8);
        let instrs: Vec<Instruction> = repeats
            .iter()
            .map(|&rep| {
                Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8)).with_repeat(rep)
            })
            .collect();
        let blk = b.block(BasicBlock::new(
            BlockId(0),
            "b",
            SourceLoc::new("p.c", 1, "f"),
            iterations,
            instrs,
        ));
        let p = b.build().unwrap();
        let mut s = xtrace_ir::AccessStream::new(&p, blk, seed);
        let expected = iterations * repeats.iter().map(|&x| u64::from(x)).sum::<u64>();
        prop_assert_eq!(s.accesses_per_invocation(), expected);
        let mut n = 0u64;
        s.run_invocation(&mut |_| n += 1);
        prop_assert_eq!(n, expected);
    }

    #[test]
    fn programs_serialize_roundtrip(
        nregions in 1usize..5,
        iterations in 1u64..50,
    ) {
        let mut b = Program::builder();
        let mut rids = Vec::new();
        for i in 0..nregions {
            rids.push(b.region(format!("r{i}"), 4096 * (i as u64 + 1), 8));
        }
        let instrs: Vec<Instruction> = rids
            .iter()
            .map(|&r| Instruction::mem(MemOp::Load, r, 8, AddressPattern::Random))
            .collect();
        b.block(BasicBlock::new(
            BlockId(0),
            "b",
            SourceLoc::new("p.c", 1, "f"),
            iterations,
            instrs,
        ));
        let p = b.build().unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, p);
    }
}
