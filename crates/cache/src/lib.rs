//! # xtrace-cache — target-system cache hierarchy simulation
//!
//! The PMaC pipeline never measures cache behaviour on the machine it runs
//! on: the instrumented application's address stream is "processed on-the-fly
//! through a cache simulator which mimics the structure of the system being
//! predicted" (Section III-A). That indirection is what enables
//! *cross-architectural* prediction — signatures for a target machine are
//! collected on a base machine, or for a machine that does not exist yet
//! (the paper's Table III explores a hypothetical 56 KB-L1 system this way).
//!
//! This crate is that simulator: a configurable multi-level, set-associative
//! hierarchy ([`CacheHierarchy`]) with LRU/FIFO/random replacement, driven
//! one reference at a time. Each access reports the level it hit in, which
//! the tracer aggregates into the per-basic-block hit rates of the
//! application signature, and which the ground-truth simulator converts into
//! exact access latencies.
//!
//! A [`WorkingSetTracker`] measures the distinct cache lines an instruction
//! touches — feature element (5), "working set size".

#![warn(missing_docs)]

pub mod config;
pub mod hierarchy;
pub mod stats;
pub mod wset;

pub use config::{CacheLevelConfig, HierarchyConfig, Replacement};
pub use hierarchy::{CacheHierarchy, MEMORY_LEVEL_CAP};
pub use stats::LevelCounts;
pub use wset::WorkingSetTracker;
