//! The multi-level cache simulator proper.
//!
//! Simplifications relative to real silicon, chosen to match what the PMaC
//! on-the-fly simulator models (hit *rates*, not coherence):
//!
//! * non-inclusive, non-exclusive (NINE) fill: a line fetched from level `i`
//!   is installed in every level closer to the core, and an eviction at an
//!   outer level does not back-invalidate inner levels;
//! * stores follow the same lookup/fill path as loads (write-allocate), and
//!   write-backs are not separately simulated — hit-rate features do not
//!   distinguish dirty evictions;
//! * a reference spanning multiple L1 lines is classified by its *slowest*
//!   chunk, and every spanned line is touched.
//!
//! Replacement is exact per-set LRU by default, with FIFO and seeded-random
//! alternatives for the ablation benches.
//!
//! # Kernel layout
//!
//! This simulator is the inner loop of signature collection (hundreds of
//! millions of references per trace), so the per-reference path is kept
//! branch- and memory-lean:
//!
//! * all line/set arithmetic is shift/mask — configuration validation
//!   guarantees power-of-two line sizes and set counts, so no division
//!   survives into the access path;
//! * each set's lines live in a fixed-capacity contiguous group of the flat
//!   `tags` array, physically ordered by recency (MRU first). LRU needs no
//!   timestamps: a hit rotates the line to the front, a fill evicts the
//!   tail. FIFO keeps the same layout in fill order (hits do not rotate);
//! * lookup and fill are fused into one pass over the set
//!   ([`Level::access`]), so a miss never re-derives the set or re-scans it;
//! * a one-entry last-line filter short-circuits repeat touches of the most
//!   recent L1 line (the common case for unit-stride streams) without
//!   walking any set — sound because the previous access left that line
//!   resident and most-recent at L1, so a repeat is a guaranteed L1 hit
//!   with no state change under any replacement policy.

use crate::config::{HierarchyConfig, Replacement};

/// Upper bound on `depth() + 1` used to size fixed stat arrays: up to three
/// cache levels plus main memory covers every machine the paper discusses.
pub const MEMORY_LEVEL_CAP: usize = 4;

const EMPTY: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Level {
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `sets * assoc` line addresses (already shifted), `EMPTY` when
    /// invalid. Each set's `assoc`-sized group is ordered most-recent
    /// first (LRU) or newest-fill first (FIFO/Random); empty ways always
    /// sit at the tail.
    tags: Vec<u64>,
    replacement: Replacement,
    rng: u64,
}

impl Level {
    fn new(cfg: &crate::config::CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        let ways = sets as usize * cfg.assoc as usize;
        Self {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            assoc: cfg.assoc as usize,
            tags: vec![EMPTY; ways],
            replacement: cfg.replacement,
            // Arbitrary odd constant; per-hierarchy determinism is all that
            // matters for Random replacement.
            rng: 0x243F_6A88_85A3_08D3,
        }
    }

    /// Fused lookup + fill: one pass over the set.
    ///
    /// On hit, updates recency (LRU only) and returns `true`. On miss,
    /// installs the line at the most-recent position — evicting the tail
    /// (LRU/FIFO) or a uniformly random way (Random, full sets only) — and
    /// returns `false`.
    #[inline]
    fn access(&mut self, line: u64) -> bool {
        let start = (line & self.set_mask) as usize * self.assoc;
        let set = &mut self.tags[start..start + self.assoc];
        if set[0] == line {
            return true; // already most recent
        }
        if let Some(w) = set[1..].iter().position(|&t| t == line) {
            if self.replacement == Replacement::Lru {
                set[..=w + 1].rotate_right(1);
            }
            return true;
        }
        let last = self.assoc - 1;
        let victim = if self.replacement == Replacement::Random && set[last] != EMPTY {
            // Full set: xorshift64* step; deterministic across runs.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            (self.rng % self.assoc as u64) as usize
        } else {
            // LRU / FIFO evict the tail (least recent / oldest fill); in a
            // not-yet-full set the tail is an empty way for every policy.
            last
        };
        set[..=victim].rotate_right(1);
        set[0] = line;
        false
    }
}

/// A simulated cache hierarchy for one core / MPI task.
///
/// ```
/// use xtrace_cache::{CacheHierarchy, CacheLevelConfig, HierarchyConfig};
///
/// let cfg = HierarchyConfig::new(
///     vec![CacheLevelConfig::lru("L1", 32 * 1024, 64, 8, 2.0)],
///     180.0,
/// ).unwrap();
/// let mut cache = CacheHierarchy::try_new(cfg).unwrap();
/// assert_eq!(cache.access(0x1000, 8), 1, "cold miss goes to memory");
/// assert_eq!(cache.access(0x1000, 8), 0, "now L1-resident");
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    levels: Vec<Level>,
    l1_line_shift: u32,
    /// L1 line index of the most recent chunk, for the repeat-touch fast
    /// path; `EMPTY` when cold or freshly flushed.
    last_line: u64,
}

impl CacheHierarchy {
    /// Builds the simulator, re-validating the configuration (whose
    /// fields are public and may have been edited since construction).
    pub fn try_new(config: HierarchyConfig) -> Result<Self, String> {
        config.validate()?;
        if config.depth() >= MEMORY_LEVEL_CAP {
            return Err(format!(
                "at most {} cache levels supported, got {}",
                MEMORY_LEVEL_CAP - 1,
                config.depth()
            ));
        }
        let levels = config.levels.iter().map(Level::new).collect();
        let l1_line_shift = config.levels[0].line_bytes.trailing_zeros();
        Ok(Self {
            config,
            levels,
            l1_line_shift,
            last_line: EMPTY,
        })
    }

    /// Builds the simulator for a configuration known to be valid (e.g.
    /// one owned by a constructed `MachineProfile`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or deeper than
    /// [`MEMORY_LEVEL_CAP`]` - 1` levels; use [`Self::try_new`] to handle
    /// untrusted configurations gracefully.
    #[deprecated(
        since = "0.1.0",
        note = "use try_new and handle the validation error; the panicking \
                form will be removed"
    )]
    pub fn new(config: HierarchyConfig) -> Self {
        Self::try_new(config).expect("invalid cache hierarchy configuration")
    }

    /// The configuration this simulator mimics.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cache levels (a return value of `depth()` from
    /// [`Self::access`] means main memory).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Simulates one reference of `bytes` bytes at `addr`.
    ///
    /// Returns the hit level: `0` for L1, `1` for L2, …, `depth()` for main
    /// memory. Multi-line references return the deepest level any spanned
    /// line required.
    #[inline]
    pub fn access(&mut self, addr: u64, bytes: u32) -> u8 {
        let bytes = u64::from(bytes.max(1));
        let first = addr >> self.l1_line_shift;
        let last = (addr + bytes - 1) >> self.l1_line_shift;
        if first == last {
            return self.access_chunk(first, addr);
        }
        let mut worst = 0u8;
        for line in first..=last {
            worst = worst.max(self.access_chunk(line, line << self.l1_line_shift));
        }
        worst
    }

    /// Simulates one L1-line-sized chunk (`l1_line` is `addr`'s L1 line).
    #[inline]
    fn access_chunk(&mut self, l1_line: u64, addr: u64) -> u8 {
        if l1_line == self.last_line {
            // The previous chunk left this line L1-resident and most
            // recent; a repeat hits L1 and changes no state at any level
            // under LRU, FIFO, or Random.
            return 0;
        }
        self.last_line = l1_line;
        let depth = self.levels.len() as u8;
        for (i, level) in self.levels.iter_mut().enumerate() {
            // Fused: a level that misses installs the line in the same
            // pass, so no second walk fills the levels closer to the core.
            if level.access(addr >> level.line_shift) {
                return i as u8;
            }
        }
        depth
    }

    /// Streams a flat chunk of `(addr, bytes)` references through the
    /// hierarchy without classifying them — the warmup drain of the
    /// tracer's bounded ring buffer.
    ///
    /// State transitions are exactly those of calling [`Self::access`]
    /// per reference, so a warmup performed through this entry point
    /// leaves the hierarchy bit-identical to the unbuffered formulation;
    /// only the per-reference hit-level bookkeeping is dropped. Feeding a
    /// whole ring chunk per call keeps the reference data contiguous
    /// through the fused per-level lookup+fill loop.
    #[inline]
    pub fn warm(&mut self, refs: impl IntoIterator<Item = (u64, u32)>) {
        for (addr, bytes) in refs {
            self.access(addr, bytes);
        }
    }

    /// Invalidates all contents (e.g. between MultiMAPS sweep points).
    pub fn flush(&mut self) {
        self.last_line = EMPTY;
        for level in &mut self.levels {
            level.tags.fill(EMPTY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;

    /// Tiny, fully transparent hierarchy: L1 = 4 lines of 64 B, direct path
    /// to hand-check hits and evictions. 2-way, 2 sets.
    fn tiny() -> CacheHierarchy {
        let l1 = CacheLevelConfig::lru("L1", 256, 64, 2, 1.0);
        let l2 = CacheLevelConfig::lru("L2", 1024, 64, 2, 10.0);
        CacheHierarchy::try_new(HierarchyConfig::new(vec![l1, l2], 100.0).unwrap()).unwrap()
    }

    #[test]
    fn try_new_rejects_invalid_configs_without_panicking() {
        let good = HierarchyConfig::new(vec![CacheLevelConfig::lru("L1", 256, 64, 2, 1.0)], 100.0)
            .unwrap();
        assert!(CacheHierarchy::try_new(good.clone()).is_ok());
        // Public fields can be corrupted after validated construction;
        // try_new re-checks instead of panicking.
        let mut bad = good;
        bad.levels[0].line_bytes = 48; // not a power of two
        let err = CacheHierarchy::try_new(bad).unwrap_err();
        assert!(err.contains("power of two"), "got: {err}");
    }

    #[test]
    fn warm_chunk_leaves_state_identical_to_per_access_warmup() {
        let refs: Vec<(u64, u32)> = (0..64u64).map(|i| (i * 48, 8)).collect();
        let probe = [0u64, 64, 512, 48 * 63, 4096];

        let mut a = tiny();
        for &(addr, bytes) in &refs {
            a.access(addr, bytes);
        }
        let mut b = tiny();
        b.warm(refs.iter().copied());

        for &p in &probe {
            assert_eq!(a.access(p, 8), b.access(p, 8), "probe {p} diverged");
        }
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0, 8), 2, "cold miss goes to memory");
        assert_eq!(c.access(0, 8), 0, "now resident in L1");
        assert_eq!(c.access(32, 8), 0, "same line");
        assert_eq!(c.access(64, 8), 2, "different line, cold");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 of L1 holds lines with even line index (2 sets): lines 0, 2.
        c.access(0, 8); // line 0 -> set 0
        c.access(128, 8); // line 2 -> set 0; set full
        c.access(0, 8); // touch line 0, making line 2 LRU
        c.access(256, 8); // line 4 -> set 0; evicts line 2
        assert_eq!(c.access(0, 8), 0, "line 0 retained");
        assert_eq!(c.access(128, 8), 1, "line 2 evicted from L1, still in L2");
    }

    #[test]
    fn repeat_touches_do_not_disturb_lru_order() {
        let mut c = tiny();
        // Same eviction scenario as above but with repeated touches that
        // exercise the last-line fast path between the ordering accesses.
        c.access(0, 8);
        c.access(0, 16);
        c.access(128, 8);
        c.access(128, 8);
        c.access(0, 8); // line 0 most recent again
        c.access(0, 8);
        c.access(256, 8); // evicts line 2
        assert_eq!(c.access(0, 8), 0, "line 0 retained");
        assert_eq!(c.access(128, 8), 1, "line 2 evicted from L1, still in L2");
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = tiny();
        // Walk 8 distinct lines: 512 B > L1 (256 B), < L2 (1024 B).
        for i in 0..8u64 {
            assert_eq!(c.access(i * 64, 8), 2);
        }
        // Second sweep: everything misses L1 (capacity) but hits L2.
        for i in 0..8u64 {
            let lvl = c.access(i * 64, 8);
            assert!(lvl >= 1, "line {i} must not be L1-resident");
            assert_eq!(lvl, 1, "line {i} should hit L2");
        }
    }

    #[test]
    fn small_working_set_hits_l1_forever() {
        let mut c = tiny();
        for k in 0..1000u64 {
            let lvl = c.access((k % 2) * 64, 8);
            if k >= 2 {
                assert_eq!(lvl, 0);
            }
        }
    }

    #[test]
    fn straddling_reference_touches_both_lines() {
        let mut c = tiny();
        assert_eq!(c.access(60, 8), 2, "cold: spans lines 0 and 1");
        assert_eq!(c.access(0, 8), 0, "line 0 was filled");
        assert_eq!(c.access(64, 8), 0, "line 1 was filled");
    }

    #[test]
    fn flush_empties_all_levels() {
        let mut c = tiny();
        c.access(0, 8);
        c.flush();
        assert_eq!(c.access(0, 8), 2);
    }

    #[test]
    fn flush_resets_last_line_fast_path() {
        let mut c = tiny();
        c.access(0, 8);
        c.access(0, 8);
        c.flush();
        assert_eq!(c.access(0, 8), 2, "repeat of pre-flush line is cold");
        assert_eq!(c.access(0, 8), 0);
    }

    #[test]
    fn fifo_ignores_recency() {
        let l1 = CacheLevelConfig {
            replacement: Replacement::Fifo,
            ..CacheLevelConfig::lru("L1", 256, 64, 2, 1.0)
        };
        let mut c =
            CacheHierarchy::try_new(HierarchyConfig::new(vec![l1], 100.0).unwrap()).unwrap();
        c.access(0, 8); // line 0 filled first
        c.access(128, 8); // line 2
        c.access(0, 8); // hit; FIFO order unchanged
        c.access(256, 8); // evicts line 0 (oldest fill), not line 2
        assert_eq!(c.access(128, 8), 0, "line 2 retained under FIFO");
        assert_eq!(c.access(0, 8), 1, "line 0 evicted under FIFO");
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let mk = || {
            let l1 = CacheLevelConfig {
                replacement: Replacement::Random,
                ..CacheLevelConfig::lru("L1", 256, 64, 2, 1.0)
            };
            CacheHierarchy::try_new(HierarchyConfig::new(vec![l1], 100.0).unwrap()).unwrap()
        };
        let run = |mut c: CacheHierarchy| {
            (0..2000u64)
                .map(|k| c.access((k * 37 % 50) * 64, 8))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(mk()), run(mk()));
    }

    #[test]
    fn random_fills_empty_ways_before_evicting() {
        let l1 = CacheLevelConfig {
            replacement: Replacement::Random,
            ..CacheLevelConfig::lru("L1", 256, 64, 2, 1.0)
        };
        let mut c =
            CacheHierarchy::try_new(HierarchyConfig::new(vec![l1], 100.0).unwrap()).unwrap();
        c.access(0, 8); // set 0, one way used
        c.access(128, 8); // set 0, second way: must not evict line 0
        assert_eq!(c.access(0, 8), 0);
        assert_eq!(c.access(128, 8), 0);
    }

    #[test]
    fn single_level_hierarchy_reports_memory_as_level_one() {
        let l1 = CacheLevelConfig::lru("L1", 256, 64, 2, 1.0);
        let mut c = CacheHierarchy::try_new(HierarchyConfig::new(vec![l1], 50.0).unwrap()).unwrap();
        assert_eq!(c.depth(), 1);
        assert_eq!(c.access(0, 8), 1);
        assert_eq!(c.access(0, 8), 0);
    }

    #[test]
    fn sequential_sweep_hit_rate_matches_line_geometry() {
        // Unit-stride 8-byte accesses over a region much larger than the
        // cache: exactly 1 miss per 64-byte line -> 7/8 of accesses hit L1.
        let l1 = CacheLevelConfig::lru("L1", 4096, 64, 4, 1.0);
        let mut c = CacheHierarchy::try_new(HierarchyConfig::new(vec![l1], 50.0).unwrap()).unwrap();
        let n = 1 << 16;
        let mut hits = 0u64;
        for k in 0..n {
            if c.access(k * 8, 8) == 0 {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 7.0 / 8.0).abs() < 1e-3, "hit rate {rate}");
    }

    #[test]
    #[should_panic(expected = "invalid cache hierarchy")]
    #[allow(deprecated)] // the deprecated panicking constructor is what's under test
    fn invalid_config_panics() {
        let bad = CacheLevelConfig::lru("L1", 1000, 48, 3, 1.0);
        CacheHierarchy::new(HierarchyConfig {
            levels: vec![bad],
            memory_latency_cycles: 10.0,
        });
    }
}
