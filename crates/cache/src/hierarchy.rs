//! The multi-level cache simulator proper.
//!
//! Simplifications relative to real silicon, chosen to match what the PMaC
//! on-the-fly simulator models (hit *rates*, not coherence):
//!
//! * non-inclusive, non-exclusive (NINE) fill: a line fetched from level `i`
//!   is installed in every level closer to the core, and an eviction at an
//!   outer level does not back-invalidate inner levels;
//! * stores follow the same lookup/fill path as loads (write-allocate), and
//!   write-backs are not separately simulated — hit-rate features do not
//!   distinguish dirty evictions;
//! * a reference spanning multiple L1 lines is classified by its *slowest*
//!   chunk, and every spanned line is touched.
//!
//! Replacement is exact per-set LRU by default, with FIFO and seeded-random
//! alternatives for the ablation benches.

use crate::config::{HierarchyConfig, Replacement};

/// Upper bound on `depth() + 1` used to size fixed stat arrays: up to three
/// cache levels plus main memory covers every machine the paper discusses.
pub const MEMORY_LEVEL_CAP: usize = 4;

const EMPTY: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Level {
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `sets * assoc` line addresses (already shifted), `EMPTY` when invalid.
    tags: Vec<u64>,
    /// Parallel recency (LRU) or fill-order (FIFO) stamps.
    stamp: Vec<u64>,
    replacement: Replacement,
    tick: u64,
    rng: u64,
}

impl Level {
    fn new(cfg: &crate::config::CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        let ways = sets as usize * cfg.assoc as usize;
        Self {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            assoc: cfg.assoc as usize,
            tags: vec![EMPTY; ways],
            stamp: vec![0; ways],
            replacement: cfg.replacement,
            tick: 0,
            // Arbitrary odd constant; per-hierarchy determinism is all that
            // matters for Random replacement.
            rng: 0x243F_6A88_85A3_08D3,
        }
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Looks the line up; on hit updates recency and returns true.
    #[inline]
    fn probe(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in range {
            if self.tags[w] == line {
                if self.replacement == Replacement::Lru {
                    self.tick += 1;
                    self.stamp[w] = self.tick;
                }
                return true;
            }
        }
        false
    }

    /// Installs the line, evicting per policy if the set is full.
    #[inline]
    fn fill(&mut self, line: u64) {
        let range = self.set_range(line);
        self.tick += 1;
        // Prefer an invalid way.
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for w in range.clone() {
            if self.tags[w] == EMPTY {
                self.tags[w] = line;
                self.stamp[w] = self.tick;
                return;
            }
            if self.stamp[w] < victim_stamp {
                victim_stamp = self.stamp[w];
                victim = w;
            }
        }
        if self.replacement == Replacement::Random {
            // xorshift64* step; deterministic across runs.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            victim = range.start + (self.rng % self.assoc as u64) as usize;
        }
        self.tags[victim] = line;
        self.stamp[victim] = self.tick;
    }
}

/// A simulated cache hierarchy for one core / MPI task.
///
/// ```
/// use xtrace_cache::{CacheHierarchy, CacheLevelConfig, HierarchyConfig};
///
/// let cfg = HierarchyConfig::new(
///     vec![CacheLevelConfig::lru("L1", 32 * 1024, 64, 8, 2.0)],
///     180.0,
/// ).unwrap();
/// let mut cache = CacheHierarchy::new(cfg);
/// assert_eq!(cache.access(0x1000, 8), 1, "cold miss goes to memory");
/// assert_eq!(cache.access(0x1000, 8), 0, "now L1-resident");
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    levels: Vec<Level>,
    l1_line_bytes: u64,
}

impl CacheHierarchy {
    /// Builds the simulator for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or deeper than
    /// [`MEMORY_LEVEL_CAP`]` - 1` levels.
    pub fn new(config: HierarchyConfig) -> Self {
        config
            .validate()
            .expect("invalid cache hierarchy configuration");
        assert!(
            config.depth() < MEMORY_LEVEL_CAP,
            "at most {} cache levels supported",
            MEMORY_LEVEL_CAP - 1
        );
        let levels = config.levels.iter().map(Level::new).collect();
        let l1_line_bytes = u64::from(config.levels[0].line_bytes);
        Self {
            config,
            levels,
            l1_line_bytes,
        }
    }

    /// The configuration this simulator mimics.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cache levels (a return value of `depth()` from
    /// [`Self::access`] means main memory).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Simulates one reference of `bytes` bytes at `addr`.
    ///
    /// Returns the hit level: `0` for L1, `1` for L2, …, `depth()` for main
    /// memory. Multi-line references return the deepest level any spanned
    /// line required.
    #[inline]
    pub fn access(&mut self, addr: u64, bytes: u32) -> u8 {
        let bytes = u64::from(bytes.max(1));
        let first = addr / self.l1_line_bytes;
        let last = (addr + bytes - 1) / self.l1_line_bytes;
        if first == last {
            return self.access_chunk(addr);
        }
        let mut worst = 0u8;
        for line in first..=last {
            worst = worst.max(self.access_chunk(line * self.l1_line_bytes));
        }
        worst
    }

    /// Simulates one L1-line-sized chunk.
    #[inline]
    fn access_chunk(&mut self, addr: u64) -> u8 {
        let depth = self.levels.len();
        let mut hit = depth; // assume memory
        for (i, level) in self.levels.iter_mut().enumerate() {
            let line = level.line_of(addr);
            if level.probe(line) {
                hit = i;
                break;
            }
        }
        // Fill every level closer to the core than the hit level.
        for level in self.levels[..hit].iter_mut() {
            let line = level.line_of(addr);
            level.fill(line);
        }
        hit as u8
    }

    /// Invalidates all contents (e.g. between MultiMAPS sweep points).
    pub fn flush(&mut self) {
        for level in &mut self.levels {
            level.tags.fill(EMPTY);
            level.stamp.fill(0);
            level.tick = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;

    /// Tiny, fully transparent hierarchy: L1 = 4 lines of 64 B, direct path
    /// to hand-check hits and evictions. 2-way, 2 sets.
    fn tiny() -> CacheHierarchy {
        let l1 = CacheLevelConfig::lru("L1", 256, 64, 2, 1.0);
        let l2 = CacheLevelConfig::lru("L2", 1024, 64, 2, 10.0);
        CacheHierarchy::new(HierarchyConfig::new(vec![l1, l2], 100.0).unwrap())
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0, 8), 2, "cold miss goes to memory");
        assert_eq!(c.access(0, 8), 0, "now resident in L1");
        assert_eq!(c.access(32, 8), 0, "same line");
        assert_eq!(c.access(64, 8), 2, "different line, cold");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 of L1 holds lines with even line index (2 sets): lines 0, 2.
        c.access(0, 8); // line 0 -> set 0
        c.access(128, 8); // line 2 -> set 0; set full
        c.access(0, 8); // touch line 0, making line 2 LRU
        c.access(256, 8); // line 4 -> set 0; evicts line 2
        assert_eq!(c.access(0, 8), 0, "line 0 retained");
        assert_eq!(c.access(128, 8), 1, "line 2 evicted from L1, still in L2");
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = tiny();
        // Walk 8 distinct lines: 512 B > L1 (256 B), < L2 (1024 B).
        for i in 0..8u64 {
            assert_eq!(c.access(i * 64, 8), 2);
        }
        // Second sweep: everything misses L1 (capacity) but hits L2.
        for i in 0..8u64 {
            let lvl = c.access(i * 64, 8);
            assert!(lvl >= 1, "line {i} must not be L1-resident");
            assert_eq!(lvl, 1, "line {i} should hit L2");
        }
    }

    #[test]
    fn small_working_set_hits_l1_forever() {
        let mut c = tiny();
        for k in 0..1000u64 {
            let lvl = c.access((k % 2) * 64, 8);
            if k >= 2 {
                assert_eq!(lvl, 0);
            }
        }
    }

    #[test]
    fn straddling_reference_touches_both_lines() {
        let mut c = tiny();
        assert_eq!(c.access(60, 8), 2, "cold: spans lines 0 and 1");
        assert_eq!(c.access(0, 8), 0, "line 0 was filled");
        assert_eq!(c.access(64, 8), 0, "line 1 was filled");
    }

    #[test]
    fn flush_empties_all_levels() {
        let mut c = tiny();
        c.access(0, 8);
        c.flush();
        assert_eq!(c.access(0, 8), 2);
    }

    #[test]
    fn fifo_ignores_recency() {
        let l1 = CacheLevelConfig {
            replacement: Replacement::Fifo,
            ..CacheLevelConfig::lru("L1", 256, 64, 2, 1.0)
        };
        let mut c = CacheHierarchy::new(HierarchyConfig::new(vec![l1], 100.0).unwrap());
        c.access(0, 8); // line 0 filled first
        c.access(128, 8); // line 2
        c.access(0, 8); // hit; FIFO order unchanged
        c.access(256, 8); // evicts line 0 (oldest fill), not line 2
        assert_eq!(c.access(128, 8), 0, "line 2 retained under FIFO");
        assert_eq!(c.access(0, 8), 1, "line 0 evicted under FIFO");
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let mk = || {
            let l1 = CacheLevelConfig {
                replacement: Replacement::Random,
                ..CacheLevelConfig::lru("L1", 256, 64, 2, 1.0)
            };
            CacheHierarchy::new(HierarchyConfig::new(vec![l1], 100.0).unwrap())
        };
        let run = |mut c: CacheHierarchy| {
            (0..2000u64)
                .map(|k| c.access((k * 37 % 50) * 64, 8))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(mk()), run(mk()));
    }

    #[test]
    fn single_level_hierarchy_reports_memory_as_level_one() {
        let l1 = CacheLevelConfig::lru("L1", 256, 64, 2, 1.0);
        let mut c = CacheHierarchy::new(HierarchyConfig::new(vec![l1], 50.0).unwrap());
        assert_eq!(c.depth(), 1);
        assert_eq!(c.access(0, 8), 1);
        assert_eq!(c.access(0, 8), 0);
    }

    #[test]
    fn sequential_sweep_hit_rate_matches_line_geometry() {
        // Unit-stride 8-byte accesses over a region much larger than the
        // cache: exactly 1 miss per 64-byte line -> 7/8 of accesses hit L1.
        let l1 = CacheLevelConfig::lru("L1", 4096, 64, 4, 1.0);
        let mut c = CacheHierarchy::new(HierarchyConfig::new(vec![l1], 50.0).unwrap());
        let n = 1 << 16;
        let mut hits = 0u64;
        for k in 0..n {
            if c.access(k * 8, 8) == 0 {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 7.0 / 8.0).abs() < 1e-3, "hit rate {rate}");
    }

    #[test]
    #[should_panic(expected = "invalid cache hierarchy")]
    fn invalid_config_panics() {
        let bad = CacheLevelConfig::lru("L1", 1000, 48, 3, 1.0);
        CacheHierarchy::new(HierarchyConfig {
            levels: vec![bad],
            memory_latency_cycles: 10.0,
        });
    }
}
