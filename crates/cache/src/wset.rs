//! Working-set measurement.
//!
//! Feature element (5) of the application signature is the working-set size
//! of each basic block — the amount of distinct data it touches. Combined
//! with the hit rates it tells the convolution *where on the MultiMAPS
//! surface* a block's references live, and it is one of the quantities whose
//! scaling behaviour the extrapolator fits (under strong scaling it usually
//! shrinks like `1/P`).

use std::collections::HashSet;

/// Counts distinct cache lines touched by a stream of references.
#[derive(Debug, Clone)]
pub struct WorkingSetTracker {
    line_shift: u32,
    line_bytes: u64,
    lines: HashSet<u64>,
}

impl WorkingSetTracker {
    /// Creates a tracker with the given line granularity (use the target
    /// system's L1 line size so working sets are comparable with cache
    /// capacities).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a nonzero power of two.
    pub fn new(line_bytes: u32) -> Self {
        assert!(
            line_bytes > 0 && line_bytes.is_power_of_two(),
            "line size must be a nonzero power of two"
        );
        Self {
            line_shift: line_bytes.trailing_zeros(),
            line_bytes: u64::from(line_bytes),
            lines: HashSet::new(),
        }
    }

    /// Records a reference of `bytes` bytes at `addr`.
    #[inline]
    pub fn touch(&mut self, addr: u64, bytes: u32) {
        let bytes = u64::from(bytes.max(1));
        let first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        for line in first..=last {
            self.lines.insert(line);
        }
    }

    /// Distinct lines touched so far.
    pub fn lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Working-set size in bytes (distinct lines × line size).
    pub fn bytes(&self) -> u64 {
        self.lines() * self.line_bytes
    }

    /// Forgets everything (e.g. between phases).
    pub fn reset(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_lines_counted_once() {
        let mut w = WorkingSetTracker::new(64);
        w.touch(0, 8);
        w.touch(8, 8);
        w.touch(63, 1);
        assert_eq!(w.lines(), 1);
        w.touch(64, 8);
        assert_eq!(w.lines(), 2);
        assert_eq!(w.bytes(), 128);
    }

    #[test]
    fn straddling_touch_counts_both_lines() {
        let mut w = WorkingSetTracker::new(64);
        w.touch(60, 8);
        assert_eq!(w.lines(), 2);
    }

    #[test]
    fn reset_clears() {
        let mut w = WorkingSetTracker::new(64);
        w.touch(0, 8);
        w.reset();
        assert_eq!(w.lines(), 0);
        assert_eq!(w.bytes(), 0);
    }

    #[test]
    fn sweep_measures_region_size() {
        let mut w = WorkingSetTracker::new(64);
        for k in 0..1024u64 {
            w.touch(k * 8, 8);
        }
        assert_eq!(w.bytes(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        WorkingSetTracker::new(48);
    }
}
