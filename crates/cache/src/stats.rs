//! Per-level hit accounting.
//!
//! The paper reports *cumulative* hit rates: its Table II rows are
//! monotonically non-decreasing across L1 → L2 → L3 because "L2 hit rate"
//! means the fraction of references satisfied at or before L2. [`LevelCounts`]
//! stores raw per-level hit counts and exposes both views; the application
//! signature stores the cumulative form, which is also the coordinate system
//! of the MultiMAPS surface.

use serde::{Deserialize, Serialize};

use crate::hierarchy::MEMORY_LEVEL_CAP;

/// Hit counters for one attribution unit (an instruction, a block, or a
/// whole task).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelCounts {
    /// `hits[i]` = references satisfied exactly at cache level `i`;
    /// `hits[depth]` = references that went to main memory.
    pub hits: [u64; MEMORY_LEVEL_CAP],
    /// Total references recorded.
    pub accesses: u64,
}

impl LevelCounts {
    /// Records one access that hit at `level` (as returned by
    /// [`crate::CacheHierarchy::access`]).
    #[inline]
    pub fn record(&mut self, level: u8) {
        self.hits[level as usize] += 1;
        self.accesses += 1;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &LevelCounts) {
        for (a, b) in self.hits.iter_mut().zip(other.hits.iter()) {
            *a += b;
        }
        self.accesses += other.accesses;
    }

    /// Exact hit rate *at* level `i` (non-cumulative). Returns 0 when no
    /// accesses were recorded.
    pub fn hit_rate_at(&self, level: usize) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits[level] as f64 / self.accesses as f64
        }
    }

    /// Cumulative hit rate: fraction of references satisfied at or before
    /// level `i`. This is the paper's "Lk hit rate".
    pub fn hit_rate_cum(&self, level: usize) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let sum: u64 = self.hits[..=level].iter().sum();
        sum as f64 / self.accesses as f64
    }

    /// References that reached main memory, given the hierarchy depth.
    pub fn memory_refs(&self, depth: usize) -> u64 {
        self.hits[depth]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut c = LevelCounts::default();
        for _ in 0..70 {
            c.record(0);
        }
        for _ in 0..20 {
            c.record(1);
        }
        for _ in 0..10 {
            c.record(2);
        }
        assert_eq!(c.accesses, 100);
        assert!((c.hit_rate_at(0) - 0.70).abs() < 1e-12);
        assert!((c.hit_rate_at(1) - 0.20).abs() < 1e-12);
        assert!((c.hit_rate_cum(0) - 0.70).abs() < 1e-12);
        assert!((c.hit_rate_cum(1) - 0.90).abs() < 1e-12);
        assert!((c.hit_rate_cum(2) - 1.00).abs() < 1e-12);
        assert_eq!(c.memory_refs(2), 10);
    }

    #[test]
    fn cumulative_rates_are_monotone() {
        let mut c = LevelCounts::default();
        for lvl in [0u8, 1, 1, 2, 3, 0, 2, 3, 3] {
            c.record(lvl);
        }
        let mut prev = 0.0;
        for i in 0..MEMORY_LEVEL_CAP {
            let cur = c.hit_rate_cum(i);
            assert!(cur >= prev);
            prev = cur;
        }
        assert!((prev - 1.0).abs() < 1e-12, "all accesses land somewhere");
    }

    #[test]
    fn empty_counts_report_zero() {
        let c = LevelCounts::default();
        assert_eq!(c.hit_rate_at(0), 0.0);
        assert_eq!(c.hit_rate_cum(3), 0.0);
        assert_eq!(c.memory_refs(3), 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = LevelCounts::default();
        a.record(0);
        a.record(2);
        let mut b = LevelCounts::default();
        b.record(0);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.accesses, 4);
        assert_eq!(a.hits[0], 2);
        assert_eq!(a.hits[1], 1);
        assert_eq!(a.hits[2], 1);
    }
}
