//! Cache hierarchy configuration.
//!
//! A hierarchy config describes the *target* system's memory hierarchy —
//! the thing the paper varies between Tables II and III (e.g. System A with
//! a 12 KB L1 vs System B with a 56 KB L1, identical L2/L3). Machine presets
//! live in `xtrace-machine`; this crate only defines the structural schema
//! and validates it.

use serde::{Deserialize, Serialize};

/// Replacement policy for a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (the default; what PMaC's simulator models).
    Lru,
    /// First-in-first-out: victim is the oldest *filled* line.
    Fifo,
    /// Pseudo-random victim selection (deterministic: seeded per set from
    /// the set index, so simulations stay reproducible).
    Random,
}

/// One level of the hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Display name (`"L1"`, `"L2"`, …).
    pub name: String,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes; must be a power of two.
    pub line_bytes: u32,
    /// Associativity (ways per set). `0` is invalid; use `sets() == 1` for
    /// fully associative by setting `assoc = size/line`.
    pub assoc: u32,
    /// Load-to-use latency in cycles, consumed by the machine model when
    /// converting hit profiles into time.
    pub latency_cycles: f64,
    /// Victim selection policy.
    pub replacement: Replacement,
}

impl CacheLevelConfig {
    /// Convenience constructor with LRU replacement.
    pub fn lru(
        name: impl Into<String>,
        size_bytes: u64,
        line_bytes: u32,
        assoc: u32,
        latency_cycles: f64,
    ) -> Self {
        Self {
            name: name.into(),
            size_bytes,
            line_bytes,
            assoc,
            latency_cycles,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets this level has.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.line_bytes) * u64::from(self.assoc))
    }

    /// Validates structural invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "{}: line size {} must be a nonzero power of two",
                self.name, self.line_bytes
            ));
        }
        if self.assoc == 0 {
            return Err(format!("{}: associativity must be positive", self.name));
        }
        let way_bytes = u64::from(self.line_bytes) * u64::from(self.assoc);
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(way_bytes) {
            return Err(format!(
                "{}: size {} must be a positive multiple of line*assoc ({})",
                self.name, self.size_bytes, way_bytes
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!(
                "{}: set count {} must be a power of two",
                self.name,
                self.sets()
            ));
        }
        if self.latency_cycles <= 0.0 || self.latency_cycles.is_nan() {
            return Err(format!("{}: latency must be positive", self.name));
        }
        Ok(())
    }
}

/// A full hierarchy: ordered levels (L1 first) plus main-memory latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Levels ordered from closest to the core (L1) outwards.
    pub levels: Vec<CacheLevelConfig>,
    /// Main-memory access latency in cycles (the cost of missing every
    /// level).
    pub memory_latency_cycles: f64,
}

impl HierarchyConfig {
    /// Creates and validates a hierarchy.
    pub fn new(levels: Vec<CacheLevelConfig>, memory_latency_cycles: f64) -> Result<Self, String> {
        let cfg = Self {
            levels,
            memory_latency_cycles,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates every level plus cross-level invariants (monotonically
    /// non-decreasing sizes and latencies outwards, 1–3+ levels).
    pub fn validate(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("hierarchy needs at least one cache level".into());
        }
        for l in &self.levels {
            l.validate()?;
        }
        for w in self.levels.windows(2) {
            if w[1].size_bytes < w[0].size_bytes {
                return Err(format!(
                    "{} ({} B) smaller than inner {} ({} B)",
                    w[1].name, w[1].size_bytes, w[0].name, w[0].size_bytes
                ));
            }
            if w[1].latency_cycles < w[0].latency_cycles {
                return Err(format!("{} latency below inner {}", w[1].name, w[0].name));
            }
        }
        let llc = self.levels.last().expect("nonempty").latency_cycles;
        if self.memory_latency_cycles < llc || self.memory_latency_cycles.is_nan() {
            return Err("memory latency below last-level cache latency".into());
        }
        Ok(())
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Latency of hit level `lvl`, where `lvl == depth()` means main memory.
    pub fn latency_of(&self, lvl: usize) -> f64 {
        if lvl < self.levels.len() {
            self.levels[lvl].latency_cycles
        } else {
            self.memory_latency_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheLevelConfig {
        CacheLevelConfig::lru("L1", 32 * 1024, 64, 8, 3.0)
    }
    fn l2() -> CacheLevelConfig {
        CacheLevelConfig::lru("L2", 512 * 1024, 64, 8, 15.0)
    }

    #[test]
    fn sets_computation() {
        assert_eq!(l1().sets(), 64);
        assert_eq!(l2().sets(), 1024);
    }

    #[test]
    fn valid_hierarchy_passes() {
        let h = HierarchyConfig::new(vec![l1(), l2()], 200.0).unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.latency_of(0), 3.0);
        assert_eq!(h.latency_of(1), 15.0);
        assert_eq!(h.latency_of(2), 200.0);
    }

    #[test]
    fn rejects_non_power_of_two_line() {
        let mut bad = l1();
        bad.line_bytes = 48;
        assert!(bad.validate().unwrap_err().contains("power of two"));
    }

    #[test]
    fn rejects_zero_assoc() {
        let mut bad = l1();
        bad.assoc = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rejects_size_not_multiple_of_way() {
        let mut bad = l1();
        bad.size_bytes = 1000;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        // 3 sets: 3 * 64 * 8 = 1536 bytes.
        let bad = CacheLevelConfig::lru("L1", 1536, 64, 8, 1.0);
        assert!(bad.validate().unwrap_err().contains("set count"));
    }

    #[test]
    fn rejects_shrinking_outer_level() {
        let err = HierarchyConfig::new(vec![l2(), l1()], 200.0).unwrap_err();
        assert!(err.contains("smaller than inner"));
    }

    #[test]
    fn rejects_memory_faster_than_llc() {
        assert!(HierarchyConfig::new(vec![l1(), l2()], 1.0).is_err());
    }

    #[test]
    fn rejects_empty_hierarchy() {
        assert!(HierarchyConfig::new(vec![], 100.0).is_err());
    }

    #[test]
    fn fully_associative_level_is_valid() {
        // 64 lines, one set.
        let fa = CacheLevelConfig::lru("L1", 64 * 64, 64, 64, 2.0);
        assert_eq!(fa.sets(), 1);
        fa.validate().unwrap();
    }
}
