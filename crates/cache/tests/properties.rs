//! Property tests for the cache simulator, including an oracle comparison:
//! an LRU set-associative cache must agree exactly with a brute-force
//! reference model that keeps per-set recency lists.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use xtrace_cache::{CacheHierarchy, CacheLevelConfig, HierarchyConfig, LevelCounts};

/// Brute-force single-level LRU reference model.
struct RefLru {
    line_bytes: u64,
    sets: u64,
    assoc: usize,
    /// Per set: most-recent-last list of line addresses.
    state: Vec<Vec<u64>>,
}

impl RefLru {
    fn new(size: u64, line: u64, assoc: usize) -> Self {
        let sets = size / (line * assoc as u64);
        Self {
            line_bytes: line,
            sets,
            assoc,
            state: vec![Vec::new(); sets as usize],
        }
    }

    /// Returns true on hit.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let list = &mut self.state[set];
        if let Some(pos) = list.iter().position(|&l| l == line) {
            let l = list.remove(pos);
            list.push(l);
            true
        } else {
            if list.len() == self.assoc {
                list.remove(0);
            }
            list.push(line);
            false
        }
    }
}

proptest! {
    /// The simulator's L1 hit/miss sequence must match the reference model
    /// exactly for arbitrary address streams.
    #[test]
    fn lru_matches_reference_model(
        seed in any::<u64>(),
        log_size in 8u32..12,      // 256 B .. 2 KiB caches
        assoc_pow in 0u32..3,      // 1-, 2-, 4-way
        naddr in 100usize..2000,
        addr_space in 1u64..(1 << 14),
    ) {
        let size = 1u64 << log_size;
        let assoc = 1u32 << assoc_pow;
        let line = 64u32;
        prop_assume!(size.is_multiple_of(u64::from(line) * u64::from(assoc)));
        prop_assume!((size / (u64::from(line) * u64::from(assoc))).is_power_of_two());

        let cfg = HierarchyConfig::new(
            vec![CacheLevelConfig::lru("L1", size, line, assoc, 1.0)],
            100.0,
        ).unwrap();
        let mut sim = CacheHierarchy::try_new(cfg).unwrap();
        let mut oracle = RefLru::new(size, u64::from(line), assoc as usize);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..naddr {
            let addr = rng.gen_range(0..addr_space) * 8;
            let sim_hit = sim.access(addr, 8) == 0;
            let ref_hit = oracle.access(addr);
            prop_assert_eq!(sim_hit, ref_hit, "divergence at access {}", i);
        }
    }

    /// Hit levels never exceed the hierarchy depth and counts always sum.
    #[test]
    fn hit_levels_bounded_and_counts_consistent(
        seed in any::<u64>(),
        naddr in 1usize..3000,
    ) {
        let cfg = HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 1 << 10, 64, 2, 1.0),
                CacheLevelConfig::lru("L2", 1 << 13, 64, 4, 10.0),
                CacheLevelConfig::lru("L3", 1 << 16, 64, 8, 40.0),
            ],
            200.0,
        ).unwrap();
        let mut sim = CacheHierarchy::try_new(cfg).unwrap();
        let mut counts = LevelCounts::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..naddr {
            let addr = rng.gen_range(0u64..1 << 18);
            let lvl = sim.access(addr, 8);
            prop_assert!(usize::from(lvl) <= sim.depth());
            counts.record(lvl);
        }
        prop_assert_eq!(counts.accesses, naddr as u64);
        prop_assert_eq!(counts.hits.iter().sum::<u64>(), naddr as u64);
        // Cumulative rates are monotone and end at 1.
        let mut prev = 0.0;
        for i in 0..=sim.depth() {
            let cur = counts.hit_rate_cum(i);
            prop_assert!(cur + 1e-12 >= prev);
            prev = cur;
        }
        prop_assert!((prev - 1.0).abs() < 1e-12);
    }

    /// After a line is touched, an immediate retouch must hit L1 — for any
    /// hierarchy shape.
    #[test]
    fn immediate_reuse_hits_l1(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..500),
    ) {
        let cfg = HierarchyConfig::new(
            vec![CacheLevelConfig::lru("L1", 1 << 12, 64, 4, 1.0)],
            100.0,
        ).unwrap();
        let mut sim = CacheHierarchy::try_new(cfg).unwrap();
        for &a in &addrs {
            sim.access(a, 8);
            prop_assert_eq!(sim.access(a, 8), 0, "retouch of {} missed", a);
        }
    }

    /// A working set smaller than L1 eventually stops missing entirely.
    #[test]
    fn resident_working_set_converges_to_full_hits(
        nlines in 1u64..32,
        rounds in 2usize..6,
    ) {
        let cfg = HierarchyConfig::new(
            // 64 lines, fully associative: any <=32-line set fits.
            vec![CacheLevelConfig::lru("L1", 64 * 64, 64, 64, 1.0)],
            100.0,
        ).unwrap();
        let mut sim = CacheHierarchy::try_new(cfg).unwrap();
        for round in 0..rounds {
            for i in 0..nlines {
                let lvl = sim.access(i * 64, 8);
                if round > 0 {
                    prop_assert_eq!(lvl, 0);
                }
            }
        }
    }
}
