//! Strong-scaling cache behaviour of the UH3D proxy (the Table II
//! workflow): as the core count rises, each task's slice of the field
//! arrays shrinks and "the data slowly moves into the L3 and L2 cache".
//!
//! The example traces the `field-stencil` block at a ladder of core counts,
//! prints its per-level hit rates, and then shows that the *extrapolated*
//! signature (built from the three smallest counts) reproduces the hit
//! rates actually collected at the largest.
//!
//! Run with: `cargo run --release --example uh3d_cache_explore`

use xtrace::apps::Uh3dProxy;
use xtrace::extrap::{extrapolate_signature, ExtrapolationConfig};
use xtrace::machine::presets;
use xtrace::tracer::{collect_signature_with, BlockRecord, TracerConfig};

fn block_hit_rate(block: &BlockRecord, level: usize) -> f64 {
    let mut w = 0.0;
    let mut acc = 0.0;
    for i in &block.instrs {
        if i.features.mem_ops > 0.0 {
            w += i.features.mem_ops;
            acc += i.features.mem_ops * i.features.hit_rates[level];
        }
    }
    if w > 0.0 {
        acc / w
    } else {
        1.0
    }
}

fn main() {
    // A scaled-down UH3D proxy: per-rank field slices cross the XT5's cache
    // capacities over 8..64 cores the way the paper's cross 1024..8192.
    let mut app = Uh3dProxy::small();
    app.cfg.grid_cells = 4 << 20; // ~200 MB of field data in total
    app.cfg.total_particles = 1 << 16;
    let machine = presets::cray_xt5();
    let tracer_cfg = TracerConfig::default();
    let counts = [8u32, 16, 32, 64];
    let block_name = "field-stencil";

    println!(
        "target system: {} (L1 {} KB / L2 {} KB / L3 {} MB)\n",
        machine.name,
        machine.hierarchy.levels[0].size_bytes / 1024,
        machine.hierarchy.levels[1].size_bytes / 1024,
        machine.hierarchy.levels[2].size_bytes / (1024 * 1024),
    );
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8}",
        "core count", "slice", "L1 HR", "L2 HR", "L3 HR"
    );

    let mut traces = Vec::new();
    for &p in &counts {
        let sig = collect_signature_with(&app, p, &machine, &tracer_cfg);
        let trace = sig.longest_task().clone();
        let block = trace.block(block_name).expect("block present");
        let slice_mb = block.instrs[0].features.working_set / (1024.0 * 1024.0);
        println!(
            "{:<12} {:>8.1}MB {:>7.1}% {:>7.1}% {:>7.1}%",
            p,
            slice_mb,
            100.0 * block_hit_rate(block, 0),
            100.0 * block_hit_rate(block, 1),
            100.0 * block_hit_rate(block, 2),
        );
        traces.push(trace);
    }

    // Extrapolate from the three smallest counts to the largest and compare.
    let target = *counts.last().unwrap();
    let extrapolated = extrapolate_signature(&traces[..3], target, &ExtrapolationConfig::default())
        .expect("valid training set");
    let eb = extrapolated.block(block_name).unwrap();
    let cb = traces.last().unwrap().block(block_name).unwrap();
    println!("\nextrapolated vs collected at {target} cores:");
    for level in 0..3 {
        println!(
            "  L{} hit rate: {:>6.2}% extrapolated, {:>6.2}% collected",
            level + 1,
            100.0 * block_hit_rate(eb, level),
            100.0 * block_hit_rate(cb, level),
        );
    }
}
