//! Whole-application replay from a synthesized full signature (the
//! Section-VI pipeline end to end): cluster sampled tasks, extrapolate
//! per-group traces and populations, replay every rank through the
//! bulk-synchronous engine, and price the energy budget — all without
//! tracing the target-scale run.
//!
//! Run with: `cargo run --release --example whole_app_replay`

use xtrace::apps::{ProxyApp, SpecfemProxy};
use xtrace::extrap::{synthesize_full_signature, ExtrapolationConfig};
use xtrace::machine::presets;
use xtrace::psins::{ground_truth_application, try_predict_energy, try_replay_groups};
use xtrace::tracer::{collect_ranks, TracerConfig};

fn main() {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 12_288;
    app.cfg.timesteps = 10;
    app.cfg.collect_per_rank = 2048;
    let machine = presets::cray_xt5();
    let tracer = TracerConfig::fast();
    let training = [6u32, 12, 24];
    let target = 96u32;
    let sample: Vec<u32> = (0..6).collect();

    println!("whole-application replay: SPECFEM3D proxy, {training:?} -> {target} cores\n");

    // 1. Sample and trace a handful of tasks per training count.
    let per_count: Vec<_> = training
        .iter()
        .map(|&p| (p, collect_ranks(&app, &sample, p, &machine, &tracer)))
        .collect();

    // 2. Synthesize the full signature: per-group traces + populations.
    let sig = synthesize_full_signature(&per_count, target, 2, &ExtrapolationConfig::default())
        .expect("synthesis succeeds");
    for (i, g) in sig.groups.iter().enumerate() {
        println!(
            "group {i}: {} ranks, {:.3e} memory ops",
            g.ranks,
            g.trace.total_mem_ops()
        );
    }

    // 3. Replay all ranks through the BSP engine with per-group times.
    let groups: Vec<_> = sig
        .groups
        .iter()
        .map(|g| (g.trace.clone(), g.ranks))
        .collect();
    let replay = try_replay_groups(&app, target, &groups, &machine).unwrap();
    let exact = ground_truth_application(&app, target, &machine, &tracer);
    println!(
        "\nreplay prediction: {:.4} s  (exact whole-app measurement: {:.4} s)",
        replay.total_seconds, exact.total_seconds
    );
    println!(
        "per-rank view: master finishes compute in {:.4} s, a worker in {:.4} s",
        replay.ranks[0].compute_s,
        replay.ranks[target as usize - 1].compute_s
    );

    // 4. Energy budget of the master task at scale, from the same
    //    synthetic signature.
    let comm = app.comm_profile(target);
    let energy = try_predict_energy(sig.longest(), &comm, &machine).unwrap();
    println!(
        "\nmaster-task energy at {target} cores: {:.2} J total ({:.2} J memory, \
         {:.2} J fp, avg {:.1} W)",
        energy.total_joules, energy.memory_joules, energy.fp_joules, energy.avg_watts
    );
}
