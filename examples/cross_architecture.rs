//! Cross-architecture what-if exploration (the paper's Table III workflow).
//!
//! The application signature is collected against a *simulated* target
//! hierarchy, so a cache-design question — "what would a 56 KB L1 buy this
//! kernel?" — can be answered without the system existing. Here the
//! SPECFEM3D proxy's constant-footprint `attenuation-update` block is
//! traced against two hypothetical systems that differ only in L1 size,
//! across four core counts.
//!
//! Run with: `cargo run --release --example cross_architecture`

use xtrace::apps::SpecfemProxy;
use xtrace::machine::presets;
use xtrace::tracer::{collect_signature_with, BlockRecord, TracerConfig};

/// Memory-op-weighted cumulative hit rate of a block at `level`.
fn block_hit_rate(block: &BlockRecord, level: usize) -> f64 {
    let mut w = 0.0;
    let mut acc = 0.0;
    for i in &block.instrs {
        if i.features.mem_ops > 0.0 {
            w += i.features.mem_ops;
            acc += i.features.mem_ops * i.features.hit_rates[level];
        }
    }
    if w > 0.0 {
        acc / w
    } else {
        1.0
    }
}

fn main() {
    // A scaled-down SPECFEM3D proxy: the block under study has a constant
    // 24 KB footprint either way, so the mesh size only affects runtime.
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 4096;
    let block_name = "attenuation-update";
    let counts = [8u32, 16, 32, 64];
    let tracer_cfg = TracerConfig::default();

    println!(
        "L1 hit rate of SPECFEM3D proxy block `{block_name}` (footprint {} KB)\n",
        app.cfg.elem_work_bytes / 1024
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "system", counts[0], counts[1], counts[2], counts[3]
    );

    for machine in [presets::system_a(), presets::system_b()] {
        let l1_kb = machine.hierarchy.levels[0].size_bytes / 1024;
        let mut row = format!("{:<22}", format!("{} ({l1_kb} KB L1)", machine.name));
        for &p in &counts {
            let sig = collect_signature_with(&app, p, &machine, &tracer_cfg);
            let block = sig
                .longest_task()
                .block(block_name)
                .expect("block exists in every trace");
            row.push_str(&format!(" {:>8.1}%", 100.0 * block_hit_rate(block, 0)));
        }
        println!("{row}");
    }

    println!(
        "\nThe block's data is untouched by strong scaling (constant hit rate \
         across core counts), but moving from a 12 KB to a 56 KB L1 makes it \
         cache-resident — the design insight Table III demonstrates, obtained \
         without either system existing."
    );
}
