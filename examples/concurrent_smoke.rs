//! Concurrent-engine smoke: two pipeline sessions in **one process**,
//! running at the same time, must each reproduce the committed goldens
//! bit-for-bit.
//!
//! Each thread owns its own [`XtraceEngine`] session and runs the tiny
//! SPECFEM3D configuration the golden files pin. Because observability is
//! scoped per run (an `ObsContext` threaded through the stages, nothing
//! installed process-globally), the two concurrent sessions may not
//! perturb each other: both predictions must equal
//! `tests/golden/specfem_tiny_prediction.json` and both masked metrics
//! snapshots must equal `tests/golden/specfem_tiny_metrics.json` — the
//! same files a *single*-session run is held to.
//!
//! Exits non-zero (with a diff summary on stderr) on any mismatch.
//! `ci.sh` runs this as its concurrent smoke.
//!
//! Run with: `cargo run --release --example concurrent_smoke`

use std::path::Path;

use xtrace::core::{PipelineConfig, XtraceEngine};

/// The tiny SPECFEM3D run every golden file pins.
fn golden_config() -> PipelineConfig {
    PipelineConfig::builder("specfem3d", "cray-xt5", vec![6, 24, 96], 384)
        .scale("tiny")
        .fast_tracer(true)
        .validate(false)
        .build()
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()))
}

fn main() {
    let golden_prediction = golden("specfem_tiny_prediction.json");
    let golden_metrics = golden("specfem_tiny_metrics.json");

    // Two independent sessions, concurrently, in this one process.
    let outcomes = std::thread::scope(|scope| {
        let sessions: Vec<_> = (0..2)
            .map(|i| {
                scope.spawn(move || {
                    let engine = XtraceEngine::new();
                    let outcome = engine
                        .run(&golden_config())
                        .unwrap_or_else(|e| panic!("session {i} failed: {e}"));
                    (i, outcome)
                })
            })
            .collect();
        sessions
            .into_iter()
            .map(|s| s.join().expect("session thread panicked"))
            .collect::<Vec<_>>()
    });

    let mut failures = 0u32;
    for (i, outcome) in &outcomes {
        let prediction = serde_json::to_string_pretty(&outcome.report.prediction)
            .expect("prediction serializes");
        if prediction != golden_prediction {
            eprintln!("session {i}: prediction drifted from the golden");
            failures += 1;
        }
        let metrics = outcome.metrics.masked().to_json();
        if metrics != golden_metrics.trim_end_matches('\n') {
            eprintln!("session {i}: masked metrics drifted from the golden");
            failures += 1;
        }
        println!(
            "session {i}: prediction ok, masked metrics ok ({} counters, {} spans){}",
            outcome.metrics.counters.len(),
            outcome.metrics.spans.len(),
            if outcome.coalesced {
                " [coalesced?!]"
            } else {
                ""
            }
        );
        assert!(!outcome.coalesced, "independent sessions must not coalesce");
    }
    if failures > 0 {
        eprintln!("concurrent smoke: {failures} golden mismatch(es)");
        std::process::exit(1);
    }
    println!("concurrent smoke: 2 concurrent sessions, both bit-identical to the goldens");
}
