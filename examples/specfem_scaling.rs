//! SPECFEM3D-proxy scaling study: the Table I workflow end to end, at a
//! laptop-friendly scale.
//!
//! Traces the proxy at three small core counts, extrapolates to a 4× larger
//! one, and compares runtime predictions from the extrapolated and the
//! collected traces against the execution-driven measurement — including
//! the per-element error audit (the paper's "<20% for all influential
//! instructions" claim).
//!
//! Run with: `cargo run --release --example specfem_scaling`

use xtrace::apps::{ProxyApp, SpecfemProxy};
use xtrace::extrap::{element_errors, extrapolate_signature, summarize, ExtrapolationConfig};
use xtrace::machine::presets;
use xtrace::psins::{ground_truth, relative_error, try_predict_runtime};
use xtrace::tracer::{collect_signature_with, TracerConfig};

fn main() {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 6144;
    app.cfg.timesteps = 50;
    // Scale the master-rank responsibilities so they dominate the longest
    // task at the target count, as in the full-scale configuration (the
    // worker kernels then fall below the influence threshold).
    app.cfg.collect_per_rank = 4096;
    app.cfg.source_iters = 500_000;
    let machine = presets::bluewaters_phase1();
    let tracer_cfg = TracerConfig::default();
    let training = [6u32, 24, 96];
    let target = 384u32;

    println!("SPECFEM3D proxy, strong scaling {training:?} -> {target} cores");
    println!("target machine: {}\n", machine.name);

    let traces: Vec<_> = training
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &tracer_cfg)
                .longest_task()
                .clone()
        })
        .collect();

    let cfg = ExtrapolationConfig::default();
    let extrapolated = extrapolate_signature(&traces, target, &cfg).expect("valid training");

    let collected_sig = collect_signature_with(&app, target, &machine, &tracer_cfg);
    let collected = collected_sig.longest_task();
    let comm = app.comm_profile(target);

    let pred_e = try_predict_runtime(&extrapolated, &comm, &machine).unwrap();
    let pred_c = try_predict_runtime(collected, &comm, &machine).unwrap();
    let measured = ground_truth(&app, target, &machine, &tracer_cfg);

    println!(
        "{:<14} {:>6} {:>8} {:>14} {:>9}",
        "application", "cores", "trace", "runtime (s)", "% error"
    );
    for (label, pred) in [("Extrap.", &pred_e), ("Coll.", &pred_c)] {
        println!(
            "{:<14} {:>6} {:>8} {:>14.3} {:>8.1}%",
            "SPECFEM3D",
            target,
            label,
            pred.total_seconds,
            100.0 * relative_error(pred.total_seconds, measured.total_seconds)
        );
    }
    println!("measured runtime: {:.3} s", measured.total_seconds);

    // Element-level audit.
    let errors = element_errors(&extrapolated, collected);
    let summary = summarize(&errors, cfg.influence_threshold);
    println!(
        "\nelement audit: {} elements, {} influential (>= {:.1}% of ops)",
        summary.n_total,
        summary.n_influential,
        100.0 * cfg.influence_threshold
    );
    println!(
        "  influential: max err {:.1}%, mean err {:.2}%, {:.1}% of elements under 20%",
        100.0 * summary.max_rel_err_influential,
        100.0 * summary.mean_rel_err_influential,
        100.0 * summary.frac_influential_under_20pct
    );
    println!(
        "  all elements: max err {:.1}% (high errors concentrate in non-influential instructions)",
        100.0 * summary.max_rel_err_all
    );
}
