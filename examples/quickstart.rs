//! Quickstart: the whole pipeline on a 3-D Jacobi proxy, driven by the
//! `xtrace-core` engine.
//!
//! One [`PipelineConfig`] names the application, machine, training core
//! counts, and extrapolation target; [`Pipeline::run`] executes the
//! paper's Figure-2 flow (collect → fit → synthesize → convolve →
//! validate) with per-stage progress and timing, and returns a
//! [`PipelineReport`] carrying the synthetic trace, the runtime
//! prediction, and the validation against an actually collected trace and
//! the execution-driven "measured" runtime.
//!
//! Run with: `cargo run --release --example quickstart`

use xtrace::core::{FormSet, Pipeline, PipelineConfig, StageKind, StageObserver};

/// Prints each stage's progress and wall-clock time as the engine runs.
struct Narrator;

impl StageObserver for Narrator {
    fn progress(&mut self, stage: StageKind, message: &str) {
        println!("  [{}] {message}", stage.label());
    }
    fn stage_finished(&mut self, stage: StageKind, seconds: f64) {
        println!("  [{}] finished in {seconds:.2}s", stage.label());
    }
}

fn main() {
    let mut cfg = PipelineConfig::new("stencil3d", "cray-xt5", vec![8, 16, 32], 128);
    cfg.scale = "paper".into(); // the medium-sized Jacobi problem

    println!("application : {} ({})", cfg.app, cfg.scale);
    println!("machine     : {}", cfg.machine);
    println!(
        "training    : {:?} cores -> target {} cores",
        cfg.training, cfg.target
    );
    println!("config hash : {}\n", cfg.config_hash());

    // 1. The paper's pipeline: four canonical forms, full validation.
    let report = Pipeline::new(cfg.clone())
        .expect("valid config")
        .with_observer(Box::new(Narrator))
        .run()
        .expect("pipeline runs");

    // The stencil proxy is perfectly symmetric, so the longest task's
    // counts decay like 1/P — a shape *outside* the span of the paper's
    // four forms (its observed elements were flat or growing). The
    // Section-VI power/polynomial extension captures it; extrapolate both
    // ways to show the difference.
    let mut ext_cfg = cfg;
    ext_cfg.forms = FormSet::Extended;
    ext_cfg.validate = false; // reuse the validation from the first run
    let extended = Pipeline::new(ext_cfg)
        .expect("valid config")
        .run()
        .expect("pipeline runs");

    let v = report.validation.as_ref().expect("validation enabled");
    println!("\n{:-^64}", " prediction at target scale ");
    println!(
        "{:<28} {:>12} {:>10}",
        "trace type", "runtime (s)", "% error"
    );
    let ext_err =
        (extended.prediction.total_seconds - v.measured_seconds).abs() / v.measured_seconds;
    for (label, total, err) in [
        (
            "extrapolated (4 forms)",
            report.prediction.total_seconds,
            v.extrapolated_error,
        ),
        (
            "extrapolated (+power, SVI)",
            extended.prediction.total_seconds,
            ext_err,
        ),
        (
            "collected trace",
            v.collected.total_seconds,
            v.collected_error,
        ),
    ] {
        println!("{:<28} {:>12.4} {:>9.1}%", label, total, 100.0 * err);
    }
    println!(
        "{:<28} {:>12.4}",
        "measured (exec-driven sim)", v.measured_seconds
    );

    println!("\nstage timings:");
    for t in &report.timings {
        println!("  {:<12} {:>8.2}s", t.stage.label(), t.seconds);
    }
}
