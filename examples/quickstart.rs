//! Quickstart: the whole pipeline on a small 3-D Jacobi proxy.
//!
//! 1. Collect application signatures at three small core counts.
//! 2. Fit canonical forms to every feature element and extrapolate the
//!    signature to a large core count.
//! 3. Predict the large-scale runtime from the synthetic trace and compare
//!    it against (a) a prediction from an actually collected trace and
//!    (b) the execution-driven "measured" runtime.
//!
//! Run with: `cargo run --release --example quickstart`

use xtrace::apps::{ProxyApp, StencilProxy};
use xtrace::extrap::{
    extrapolate_signature, extrapolate_signature_detailed, CanonicalForm, ExtrapolationConfig,
};
use xtrace::machine::presets;
use xtrace::psins::{ground_truth, predict_runtime, relative_error};
use xtrace::tracer::{collect_signature_with, TracerConfig};

fn main() {
    let app = StencilProxy::medium();
    let machine = presets::cray_xt5();
    let tracer_cfg = TracerConfig::default();
    let training_counts = [8u32, 16, 32];
    let target = 128u32;

    println!("application : {}", xtrace::spmd::SpmdApp::name(&app));
    println!("machine     : {}", machine.name);
    println!("training    : {training_counts:?} cores -> target {target} cores\n");

    // 1. Signatures at the training core counts.
    let training: Vec<_> = training_counts
        .iter()
        .map(|&p| {
            let sig = collect_signature_with(&app, p, &machine, &tracer_cfg);
            println!(
                "traced {p:>4} cores: longest task = rank {}, {} blocks, {:.2e} memory ops",
                sig.comm.longest_rank,
                sig.longest_task().blocks.len(),
                sig.longest_task().total_mem_ops()
            );
            sig.longest_task().clone()
        })
        .collect();

    // 2. Extrapolate to the target count.
    let cfg = ExtrapolationConfig::default();
    let (extrapolated, fits) =
        extrapolate_signature_detailed(&training, target, &cfg).expect("valid training set");
    println!("\ncanonical forms chosen across {} elements:", fits.len());
    for form in [
        xtrace::extrap::CanonicalForm::Constant,
        xtrace::extrap::CanonicalForm::Linear,
        xtrace::extrap::CanonicalForm::Logarithmic,
        xtrace::extrap::CanonicalForm::Exponential,
    ] {
        let n = fits.iter().filter(|f| f.model.form == form).count();
        println!("  {:<10} {n}", form.label());
    }

    // The stencil proxy is perfectly symmetric, so the longest task's
    // counts decay like 1/P — a shape *outside* the span of the paper's
    // four forms (its observed elements were flat or growing). The
    // Section-VI power/polynomial extension captures it; extrapolate both
    // ways to show the difference.
    let extended = extrapolate_signature(
        &training,
        target,
        &ExtrapolationConfig {
            forms: CanonicalForm::EXTENDED_SET.to_vec(),
            ..ExtrapolationConfig::default()
        },
    )
    .expect("valid training set");

    // 3. Predict from the synthetic traces and validate.
    let comm = app.comm_profile(target);
    let pred_extrap = predict_runtime(&extrapolated, &comm, &machine);
    let pred_extended = predict_runtime(&extended, &comm, &machine);

    let collected = collect_signature_with(&app, target, &machine, &tracer_cfg);
    let pred_collected = predict_runtime(collected.longest_task(), &collected.comm, &machine);

    let measured = ground_truth(&app, target, &machine, &tracer_cfg);

    println!("\n{:-^64}", " prediction at target scale ");
    println!(
        "{:<28} {:>12} {:>10}",
        "trace type", "runtime (s)", "% error"
    );
    for (label, pred) in [
        ("extrapolated (4 forms)", &pred_extrap),
        ("extrapolated (+power, SVI)", &pred_extended),
        ("collected trace", &pred_collected),
    ] {
        println!(
            "{:<28} {:>12.4} {:>9.1}%",
            label,
            pred.total_seconds,
            100.0 * relative_error(pred.total_seconds, measured.total_seconds)
        );
    }
    println!(
        "{:<28} {:>12.4}",
        "measured (exec-driven sim)", measured.total_seconds
    );

    let gap = relative_error(pred_extended.total_seconds, pred_collected.total_seconds);
    println!(
        "\nextended-extrapolation vs collected prediction gap: {:.2}%",
        100.0 * gap
    );
}
