#!/usr/bin/env bash
# Panic-free-library gate: fails if `unwrap()` or `panic!` appears in
# library code of the Result-ified crates (tracer, extrap, psins, machine,
# cache, cli, core, spmd, obs, apps). Library errors must flow through the
# typed error model (`xtrace_core::XtraceError` and the per-crate errors it
# wraps).
#
# Allowlist, by construction rather than by enumeration:
#   * unit-test modules — everything from the first `#[cfg(test)]` line to
#     end-of-file is skipped (repo convention keeps test modules last);
#   * comment lines (`// ...`), so docs may *mention* unwrap()/panic!;
#   * crates/bench and tests/ trees — measurement and test scaffolding,
#     not library code, are simply not scanned.
# `expect("...")` remains allowed: every expect in library code documents a
# statically-guaranteed invariant (e.g. construction of built-in presets).
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for f in $(find crates/tracer/src crates/extrap/src crates/psins/src \
    crates/machine/src crates/cache/src crates/cli/src crates/core/src \
    crates/spmd/src crates/obs/src crates/apps/src -name '*.rs' | sort); do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} {print FNR": "$0}' "$f" \
        | grep -v '^[0-9]*:[[:space:]]*//' \
        | grep 'unwrap()\|panic!' || true)
    if [ -n "$hits" ]; then
        echo "$f: unwrap()/panic! in library code (use the typed error model):" >&2
        echo "$hits" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "no_panic_gate: library code is unwrap()/panic!-free"
fi
exit $status
