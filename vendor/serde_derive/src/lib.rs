//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — plain (non-generic) structs with
//! named fields, tuple structs, unit structs, and enums with unit / tuple /
//! struct variants — without depending on `syn`/`quote` (unavailable
//! offline). The input item is parsed directly from the `proc_macro` token
//! stream and the impl is emitted as source text.
//!
//! Attribute support is limited to `#[serde(transparent)]`; all other
//! `#[serde(...)]` contents are rejected loudly rather than silently
//! ignored.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;
use std::str::FromStr;

type TokIter = Peekable<proc_macro::token_stream::IntoIter>;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_deserialize(&item))
}

fn render(code: String) -> TokenStream {
    TokenStream::from_str(&code)
        .unwrap_or_else(|e| panic!("derive stand-in produced unparsable code: {e:?}\n{code}"))
}

// ---------------------------------------------------------------------------
// Parsed shape of the derive input
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    body: Body,
}

enum Body {
    UnitStruct,
    TupleStruct {
        arity: usize,
    },
    NamedStruct {
        fields: Vec<String>,
        transparent: bool,
    },
    Enum {
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let transparent = skip_attrs(&mut it);
    skip_vis(&mut it);

    let kind = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in: generic type `{name}` is not supported");
    }

    let body = match (kind.as_str(), it.next()) {
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Body::UnitStruct,
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct {
                arity: tuple_arity(&g),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct {
                fields: named_fields(&g),
                transparent,
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Body::Enum {
            variants: enum_variants(&g),
        },
        (k, t) => panic!("serde derive stand-in: unsupported item `{k}` with body {t:?}"),
    };
    Item { name, body }
}

/// Skips `#[...]` attributes; panics on `#[serde(...)]` contents other than
/// `transparent` so unsupported options fail the build instead of silently
/// changing wire format. Returns whether `#[serde(transparent)]` was seen.
fn skip_attrs(it: &mut TokIter) -> bool {
    let mut transparent = false;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(kind) = serde_attr_kind(&g) {
                    if kind == "transparent" {
                        transparent = true;
                    } else {
                        panic!("serde derive stand-in: unsupported #[serde({kind})]");
                    }
                }
            }
            other => panic!("serde derive stand-in: malformed attribute {other:?}"),
        }
    }
    transparent
}

/// If the bracket group is `serde(...)`, returns the first ident inside.
fn serde_attr_kind(g: &Group) -> Option<String> {
    let mut it = g.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    if let Some(TokenTree::Group(inner)) = it.next() {
        for tt in inner.stream() {
            if let TokenTree::Ident(id) = tt {
                return Some(id.to_string());
            }
        }
    }
    Some(String::new())
}

fn skip_vis(it: &mut TokIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stand-in: expected {what}, found {other:?}"),
    }
}

/// Number of fields in a tuple-struct / tuple-variant paren group. Commas
/// inside nested groups are invisible (groups are single tokens); commas
/// inside `<...>` generic arguments are skipped by angle-depth tracking.
fn tuple_arity(g: &Group) -> usize {
    let mut arity = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tt in g.stream() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn named_fields(g: &Group) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = g.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                skip_past_comma(&mut it);
            }
            other => panic!("serde derive stand-in: expected field name, found {other:?}"),
        }
    }
    fields
}

/// Consumes `: Type,` after a field name, honouring `<...>` nesting.
fn skip_past_comma(it: &mut TokIter) {
    let mut angle = 0i32;
    for tt in it.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
    }
}

fn enum_variants(g: &Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = g.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive stand-in: expected variant name, found {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(inner)) if inner.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(tuple_arity(inner));
                it.next();
                k
            }
            Some(TokenTree::Group(inner)) if inner.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(named_fields(inner));
                it.next();
                k
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Trailing comma between variants (discriminants are unsupported).
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("serde derive stand-in: expected `,` after variant, found {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::NamedStruct {
            fields,
            transparent,
        } if *transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Body::NamedStruct { fields, .. } => object_literal(fields.iter().map(|f| {
            (
                f.clone(),
                format!("::serde::Serialize::to_value(&self.{f})"),
            )
        })),
        Body::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let payload =
                            object_literal(fields.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn object_literal(pairs: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = pairs
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("Ok({name})"),
        Body::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct { arity } => tuple_from_array(name, "__v", *arity),
        Body::NamedStruct {
            fields,
            transparent,
        } if *transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                fields[0]
            )
        }
        Body::NamedStruct { fields, .. } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let ctor =
                            tuple_from_array(&format!("{name}::{vname}"), "__payload", *arity);
                        arms.push_str(&format!("\"{vname}\" => {{ {ctor} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__payload, \"{f}\")?"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "let (__tag, __payload) = ::serde::variant(__v, \"{name}\")?;\n\
                 match __tag {{\n\
                 {arms}\
                 __other => Err(::serde::Error::msg(::std::format!(\
                     \"unknown {name} variant `{{__other}}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// Builds `Ctor(item0, item1, ...)` from an expected-length array value.
fn tuple_from_array(ctor: &str, source: &str, arity: usize) -> String {
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
        .collect();
    format!(
        "{{\n\
         let __items = {source}.as_array().ok_or_else(|| \
             ::serde::Error::msg(\"expected array for {ctor}\"))?;\n\
         if __items.len() != {arity} {{\n\
             return Err(::serde::Error::msg(::std::format!(\
                 \"expected {arity} elements for {ctor}, found {{}}\", __items.len())));\n\
         }}\n\
         Ok({ctor}({}))\n\
         }}",
        items.join(", ")
    )
}
