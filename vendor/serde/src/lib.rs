//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides the subset the workspace uses: `Serialize` /
//! `Deserialize` traits (via a tree-structured [`Value`] data model rather
//! than serde's streaming visitors), derive macros for plain structs and
//! externally-tagged enums, and `#[serde(transparent)]` newtypes. The JSON
//! front-end lives in the sibling `serde_json` stand-in.
//!
//! The wire behaviour intentionally mirrors serde+serde_json defaults:
//! struct -> JSON object in declaration order, unit enum variant -> string,
//! data-carrying variant -> single-key object, `Option` -> value-or-null.

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so output is
/// deterministic and matches struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view with integer/float coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned view; accepts any non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Signed view; accepts any in-range integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::I64(i) => Some(i),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the first
/// mismatch between the value tree and the target type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!(
                        "expected unsigned integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(u).map_err(|_| {
                    Error::msg(format!("integer {u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!(
                        "expected integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::msg(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {}", v.kind())))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, found {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::msg(format!("expected tuple array, found {}", v.kind()))
                })?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive-generated code)
// ---------------------------------------------------------------------------

/// Reads and deserializes a struct field from an object's pairs.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(f) => T::from_value(f).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        // Missing fields only deserialize if the target accepts null
        // (i.e. Option), matching the common serde default behaviour the
        // workspace relies on.
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
    }
}

/// Fetches the payload of an externally-tagged enum variant.
pub fn variant<'v>(v: &'v Value, enum_name: &str) -> Result<(&'v str, &'v Value), Error> {
    static NULL: Value = Value::Null;
    match v {
        Value::Str(s) => Ok((s.as_str(), &NULL)),
        Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        other => Err(Error::msg(format!(
            "expected {enum_name} variant (string or single-key object), found {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::U64(3))]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::I64(-1).as_u64(), None);
    }

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let arr = [0.1f64, 0.2, 0.3, 0.4];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
    }
}
