//! Offline stand-in for `rand` 0.8.
//!
//! Implements the test-suite surface: `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `rngs::StdRng` /
//! `rngs::SmallRng` (both xoshiro256** here — callers only need seeded
//! determinism and reasonable uniformity, not the real StdRng stream).

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation helpers over a raw `u64` source.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `low..high` (half-open). Uses a widening multiply
    /// instead of modulo, so bias is at most 2^-64.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(hi > lo, "gen_range called with empty range");
        let span = hi - lo;
        let draw = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        T::from_u64(lo + draw)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 (the reference seeding scheme).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias — the stand-in has only one engine.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = rng.gen_range(0u64..8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..500 {
            let v = rng.gen_range(5u32..7);
            assert!((5..7).contains(&v));
        }
    }
}
