//! Offline stand-in for `proptest`.
//!
//! Implements the workspace's property-testing surface: the `proptest!`
//! macro, `Strategy` with `prop_map`, numeric-range and string-regex
//! strategies, tuples, `collection::vec`, `array::uniform4`,
//! `prop_oneof!`, and the `prop_assert*` family. Cases are generated from
//! a seed derived deterministically from the test name, so failures
//! reproduce across runs. Shrinking is intentionally omitted — failing
//! inputs are reported as-is.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic case RNG (xoshiro256**, SplitMix64-seeded)
// ---------------------------------------------------------------------------

/// Per-case random source handed to strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy facade backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (what `prop_oneof!` arms become).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-domain strategy for primitives (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, broad magnitude — adequate for property
        // inputs without NaN/inf surprises.
        (rng.next_f64() - 0.5) * 2e12
    }
}

// Integer ranges --------------------------------------------------------------

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

// Tuples ----------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// String regex ----------------------------------------------------------------

/// A string literal is a strategy: a mini-regex of literal characters and
/// `[class]` atoms, each optionally followed by `{m,n}`. This covers the
/// workspace's patterns (e.g. `"[a-z][a-z0-9-]{0,20}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_mini_regex(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_reps + rng.below(atom.max_reps - atom.min_reps + 1);
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct RegexAtom {
    chars: Vec<char>,
    min_reps: u64,
    max_reps: u64,
}

fn parse_mini_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated [class] in strategy regex `{pattern}`"),
                        Some(']') => break,
                        Some('-') => match (prev, chars.peek()) {
                            // A true range like a-z (not a trailing literal '-').
                            (Some(lo), Some(&hi)) if hi != ']' => {
                                chars.next();
                                for v in (lo as u32 + 1)..=(hi as u32) {
                                    class.push(char::from_u32(v).unwrap());
                                }
                                prev = None;
                            }
                            _ => {
                                class.push('-');
                                prev = Some('-');
                            }
                        },
                        Some(ch) => {
                            class.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                class
            }
            '\\' => vec![chars.next().expect("dangling escape in strategy regex")],
            lit => vec![lit],
        };
        let (min_reps, max_reps) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad {m,n} in strategy regex"),
                    n.trim().parse().expect("bad {m,n} in strategy regex"),
                ),
                None => {
                    let exact: u64 = spec.trim().parse().expect("bad {n} in strategy regex");
                    (exact, exact)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min_reps <= max_reps, "inverted {{m,n}} in strategy regex");
        atoms.push(RegexAtom {
            chars: alphabet,
            min_reps,
            max_reps,
        });
    }
    atoms
}

// Collections -----------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4 { element }
    }

    pub struct Uniform4<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
            ]
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    use super::TestRng;

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the test with the message.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped, not failed.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Lighter than upstream's 256: the stand-in doesn't shrink, so
            // long failure hunts buy little; PROPTEST_CASES overrides.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Drives `case` for `cfg.cases` accepted runs. Case seeds derive from
    /// the test name and case index, so every run of the suite explores
    /// the same inputs and failures reproduce.
    pub fn run(
        cfg: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = fnv1a(name);
        let mut accepted = 0u32;
        let max_attempts = cfg.cases.saturating_mul(20).max(1000);
        for attempt in 0..max_attempts {
            let mut rng = TestRng::seed(base ^ (u64::from(attempt) << 32));
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed (case seed index {attempt}): {msg}")
                }
            }
            if accepted >= cfg.cases {
                return;
            }
        }
        assert!(
            accepted > 0,
            "proptest `{name}`: every generated case was rejected by prop_assume!"
        );
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_matches_shape() {
        let strat = "[a-z][a-z0-9-]{0,20}";
        let mut rng = crate::TestRng::seed(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            small in 3u32..7,
            frac in 0.25f64..0.75,
            exact in 5usize..=5,
            flag in any::<bool>(),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            name in "[a-z]{2,4}",
            arr in crate::array::uniform4(0.0f64..1.0),
            v in crate::collection::vec(0u64..10, 3),
        ) {
            prop_assert!((3..7).contains(&small));
            prop_assert!((0.25..0.75).contains(&frac));
            prop_assert_eq!(exact, 5);
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(name.len() >= 2 && name.len() <= 4);
            prop_assert!(arr.iter().all(|&x| (0.0..1.0).contains(&x)));
            prop_assert_eq!(v.len(), 3);
            prop_assume!(small != 3);
            prop_assert!(small > 3);
        }
    }
}
