//! Offline stand-in for `criterion`.
//!
//! Keeps the bench binaries' API (`criterion_group!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`) and measures with a
//! plain adaptive wall-clock loop: calibrate the per-iteration cost, then
//! time enough iterations to fill a short measurement window and report
//! mean ns/iter (plus elements/s when a throughput is declared). No
//! statistics machinery, no HTML reports.
//!
//! Honors `XTRACE_BENCH_QUICK=1` to shrink the measurement window for
//! smoke runs in CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark.
fn measure_window() -> Duration {
    if std::env::var_os("XTRACE_BENCH_QUICK").is_some_and(|v| v == "1") {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

/// Top-level harness handle (one per `criterion_group!` runner).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

/// Unit declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Named set of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the adaptive loop sizes itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{name}", self.name), self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// `function/parameter` label pair.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: run once, then scale up until the batch is long
        // enough to time reliably.
        let mut batch: u64 = 1;
        let calibration_floor = Duration::from_micros(200);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || batch >= 1 << 30 {
                // Size the measured run to fill the window.
                let per_iter = elapsed.as_secs_f64() / batch as f64;
                let window = measure_window().as_secs_f64();
                let iters = ((window / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
                return;
            }
            batch = batch.saturating_mul(4);
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: F) {
    let mut b = Bencher { mean_ns: f64::NAN };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{label:<48} (no iter() call)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.3e} elem/s", n as f64 / (b.mean_ns * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.3e} B/s", n as f64 / (b.mean_ns * 1e-9))
        }
        None => String::new(),
    };
    println!("{label:<48} {:>14.1} ns/iter{rate}", b.mean_ns);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
