//! Offline stand-in for `bytes`.
//!
//! Provides the byte-buffer subset the binary trace codec uses: [`Buf`]
//! reads over `&[u8]` (advancing the slice), [`BufMut`] writes into
//! [`BytesMut`], and a frozen [`Bytes`] handle. Multi-byte integers use
//! network byte order (big-endian), matching the real crate's `get_*` /
//! `put_*` defaults so trace files stay format-compatible.

/// Read cursor over a byte source. Reads consume; over-reads panic, so
/// callers bounds-check with [`Buf::remaining`] first (the codec does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append-only write sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable handle without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable byte container (the real crate refcounts; callers here only
/// need slice access, so a plain Vec suffices).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { buf: data.to_vec() }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0x0102);
        b.put_u32(7);
        b.put_f64(1.5);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen[0..2], [1, 2]);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 7);
        assert_eq!(r.get_f64(), 1.5);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }
}
