//! Offline stand-in for `rayon`.
//!
//! Covers the subset this workspace uses: `.par_iter().map(...).collect()`
//! on slices and `Vec`s, plus `ThreadPoolBuilder` / `ThreadPool::install`
//! for bounding thread counts in tests and the CLI `--threads` flag.
//!
//! Execution model: each `collect()` runs on freshly spawned scoped
//! threads with dynamic (atomic counter) work claiming, then reassembles
//! results in item order — so output order is always identical to the
//! serial path regardless of scheduling, the property the determinism
//! suite checks. Worker threads run nested `par_iter` calls inline
//! (thread count 1) rather than over-subscribing, mirroring rayon's
//! single shared pool.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; worker
    /// threads set it to 1 so nested parallelism stays bounded.
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Global default set by [`ThreadPoolBuilder::build_global`] (0 = unset).
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Threads a parallel call issued on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED
        .with(Cell::get)
        .unwrap_or_else(|| match GLOBAL.load(Ordering::Relaxed) {
            0 => hardware_threads(),
            n => n,
        })
}

/// Error type for pool construction (the stand-in cannot actually fail;
/// the type exists so `.build().expect(...)` call sites compile).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means use all hardware threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.resolved(),
        })
    }

    /// Sets the process-wide default thread count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL.store(self.resolved(), Ordering::Relaxed);
        Ok(())
    }

    fn resolved(&self) -> usize {
        if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        }
    }
}

/// A thread-count scope; parallel calls inside [`ThreadPool::install`]
/// use this pool's count.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED.with(|c| {
            let prev = c.replace(Some(self.threads));
            // Restore on unwind too, so a panicking test doesn't leak its
            // override into later tests on the same thread.
            struct Reset<'a>(&'a Cell<Option<usize>>, Option<usize>);
            impl Drop for Reset<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _reset = Reset(c, prev);
            op()
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` entry point for slice-backed collections.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;

    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _: Vec<()> = self.map(f).collect();
    }
}

/// Mapped parallel iterator; `collect()` executes it.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.items;
        run_ordered(items.len(), |i| (self.f)(&items[i]))
    }
}

/// Runs `f(0..n)` across the effective thread count and yields results in
/// index order.
fn run_ordered<R, C, F>(n: usize, f: F) -> C
where
    R: Send,
    C: FromIterator<R>,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    INSTALLED.with(|c| c.set(Some(1)));
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => chunks.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut all: Vec<(usize, R)> = chunks.into_iter().flatten().collect();
    all.sort_unstable_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let input: Vec<u64> = (0..257).collect();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let serial: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * x).collect());
        let parallel: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(serial, parallel);
    }
}
