//! Offline stand-in for `serde_json`.
//!
//! Text front-end over the stand-in `serde` crate's [`Value`] data model:
//! a recursive-descent parser plus compact and pretty writers. Matches
//! serde_json's observable defaults where the workspace depends on them —
//! struct fields in declaration order, floats via Rust's shortest
//! round-trip formatting, `null` for `None`.

use std::fmt::Write as _;

pub use serde::Error;

/// JSON value with order-preserving objects, plus the indexing and literal
/// comparisons (`v["key"] == 2`) tests lean on.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)] // required: Index re-borrows inner nodes via pointer cast
pub struct Value(pub serde::Value);

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value(serde::Value::Null);
        match self.0.get(key) {
            // Value is a transparent wrapper, so re-borrowing the inner
            // node as Value is layout-safe; done via pointer cast to keep
            // Index's &-return signature without cloning.
            Some(inner) => unsafe { &*(inner as *const serde::Value as *const Value) },
            None => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value(serde::Value::Null);
        match self.0.as_array().and_then(|a| a.get(idx)) {
            Some(inner) => unsafe { &*(inner as *const serde::Value as *const Value) },
            None => &NULL,
        }
    }
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        self.0.as_str()
    }
    pub fn as_f64(&self) -> Option<f64> {
        self.0.as_f64()
    }
    pub fn as_u64(&self) -> Option<u64> {
        self.0.as_u64()
    }
    pub fn as_i64(&self) -> Option<i64> {
        self.0.as_i64()
    }
    pub fn as_bool(&self) -> Option<bool> {
        self.0.as_bool()
    }
    pub fn is_null(&self) -> bool {
        matches!(self.0, serde::Value::Null)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.0.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.0.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.0.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.0.as_bool() == Some(*other)
    }
}
macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match i64::try_from(*other) {
                    Ok(i) => self.0.as_i64() == Some(i),
                    Err(_) => self.0.as_u64() == Some(*other as u64),
                }
            }
        }
    )*};
}
eq_int!(i32, i64, u32, u64, usize);
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.0.as_f64() == Some(*other)
    }
}

impl serde::Serialize for Value {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}
impl serde::Deserialize for Value {
    fn from_value(v: &serde::Value) -> Result<Self, Error> {
        Ok(Value(v.clone()))
    }
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_compact(v: &serde::Value, out: &mut String) {
    match v {
        serde::Value::Null => out.push_str("null"),
        serde::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        serde::Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        serde::Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        serde::Value::F64(f) => write_f64(*f, out),
        serde::Value::Str(s) => write_escaped(s, out),
        serde::Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        serde::Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &serde::Value, indent: usize, out: &mut String) {
    match v {
        serde::Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        serde::Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Floats print with Rust's shortest-round-trip `{:?}` (e.g. `1.0`, not
/// `1`), the same observable behaviour as serde_json. Non-finite values
/// have no JSON representation; serde_json writes `null`.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{kw}` at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<serde::Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(serde::Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(serde::Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(serde::Value::Bool(false))
            }
            Some(b'"') => Ok(serde::Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<serde::Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde::Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(serde::Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<serde::Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde::Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(serde::Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::msg(format!("bad \\u escape at offset {}", self.pos))
                                })?;
                            // Surrogate pairs are out of scope for this
                            // stand-in; the workspace never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<serde::Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(serde::Value::F64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer: keep integer typing where possible.
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(serde::Value::I64)
                .or_else(|| text.parse::<f64>().ok().map(serde::Value::F64))
                .ok_or_else(|| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(serde::Value::U64)
                .or_else(|_| text.parse::<f64>().map(serde::Value::F64))
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v: Value = from_str(r#"{"a": [1, -2, 2.5], "b": "x\ny", "c": null}"#).unwrap();
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1,-2,2.5],"b":"x\ny","c":null}"#
        );
        assert_eq!(v["a"][2], 2.5);
        assert_eq!(v["b"], "x\ny");
        assert!(v["c"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
    }

    #[test]
    fn pretty_indents() {
        let v: Value = from_str(r#"{"k": [1]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn integer_literal_comparisons() {
        let v: Value = from_str(r#"{"n": 2}"#).unwrap();
        assert_eq!(v["n"], 2);
        assert_eq!(v["n"], 2u64);
    }
}
