//! Observability contract tests (PR 4 satellite): the metrics a pipeline
//! run emits are part of the public surface, so their *names and
//! deterministic values* are pinned by a committed golden snapshot, their
//! totals must not depend on the thread count, and recording them must not
//! perturb the prediction by a single bit.
//!
//! Wall-clock span durations and scheduling-dependent `sched.*` counters
//! are the only nondeterministic fields; [`Snapshot::masked`] zeroes the
//! former and strips the latter, and everything left is required to be a
//! pure function of the pipeline inputs.
//!
//! To re-bless the golden after an *intentional* metrics change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test observability
//! ```
//!
//! then commit the refreshed `tests/golden/specfem_tiny_metrics.json` and
//! explain the delta in the PR.
//!
//! PR 5 extends the same contract to the event journal: the masked
//! Chrome trace of the tiny run is pinned by
//! `tests/golden/specfem_tiny_trace.json` (same `UPDATE_GOLDEN` bless
//! flow), the masked journal and the fit diagnostics must be
//! thread-invariant, and journaling must not perturb the prediction.

use proptest::prelude::*;
use xtrace::core::{Pipeline, PipelineConfig, PipelineReport};
use xtrace::obs::{
    chrome_trace, EventPhase, Journal, JournalSnapshot, Recorder, Snapshot, SCHED_EVENT_PREFIX,
};

// Recorders are scoped per pipeline (`Pipeline::with_recorder` builds a
// run-local `ObsContext`; nothing is installed process-globally), so these
// tests run concurrently without cross-contaminating each other's
// counters — the serialization mutex this file used to need is gone.

/// Same tiny SPECFEM3D run as the golden-prediction test: three training
/// counts, no validation stage, light tracer sampling.
fn tiny_config() -> PipelineConfig {
    PipelineConfig::builder("specfem3d", "cray-xt5", vec![6, 24, 96], 384)
        .scale("tiny")
        .fast_tracer(true)
        .validate(false)
        .build()
}

fn run_recorded() -> (PipelineReport, Snapshot) {
    let recorder = Recorder::new();
    let mut pipeline = Pipeline::new(tiny_config())
        .unwrap()
        .with_recorder(recorder.clone());
    let report = pipeline.run().unwrap();
    (report, recorder.snapshot())
}

/// Like [`run_recorded`], but with the event journal enabled.
fn run_journaled() -> (PipelineReport, Snapshot, JournalSnapshot) {
    let recorder = Recorder::with_journal();
    let mut pipeline = Pipeline::new(tiny_config())
        .unwrap()
        .with_recorder(recorder.clone());
    let report = pipeline.run().unwrap();
    let journal = recorder
        .journal_snapshot()
        .expect("with_journal() recorder must have a journal");
    (report, recorder.snapshot(), journal)
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/specfem_tiny_metrics.json")
}

fn trace_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/specfem_tiny_trace.json")
}

#[test]
fn masked_metrics_snapshot_matches_committed_golden() {
    let (_, snapshot) = run_recorded();
    let actual = snapshot.masked().to_json();

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual + "\n").unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden metrics snapshot at {} ({e}); run \
             UPDATE_GOLDEN=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "masked metrics snapshot drifted from {}; if the change is \
         intentional, re-bless with UPDATE_GOLDEN=1 and explain the \
         delta in the PR",
        path.display()
    );
}

#[test]
fn masked_metrics_are_thread_invariant() {
    let run_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(run_recorded)
    };
    let (report1, snap1) = run_at(1);
    let (report4, snap4) = run_at(4);
    assert_eq!(
        snap1.masked(),
        snap4.masked(),
        "counter totals must not depend on the thread count"
    );
    assert_eq!(report1.prediction, report4.prediction);
}

#[test]
fn recording_does_not_perturb_the_prediction() {
    let plain = Pipeline::new(tiny_config()).unwrap().run().unwrap();
    let (recorded, snapshot) = run_recorded();
    // Bit-identical, not approximately equal: serialize both and compare
    // the exact decimal expansions.
    assert_eq!(
        serde_json::to_string(&plain.prediction).unwrap(),
        serde_json::to_string(&recorded.prediction).unwrap(),
        "metrics recording changed the prediction"
    );
    assert_eq!(plain.extrapolated, recorded.extrapolated);
    // And the run actually recorded something.
    assert!(!snapshot.spans.is_empty());
    assert!(snapshot.counters.values().any(|&v| v > 0));
}

#[test]
fn masked_trace_json_matches_committed_golden() {
    let (_, _, journal) = run_journaled();
    let actual = chrome_trace(&journal.masked());

    let path = trace_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual + "\n").unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace at {} ({e}); run \
             UPDATE_GOLDEN=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "masked Chrome trace drifted from {}; if the change is \
         intentional, re-bless with UPDATE_GOLDEN=1 and explain the \
         delta in the PR",
        path.display()
    );
}

#[test]
fn masked_journal_and_fit_diagnostics_are_thread_invariant() {
    let run_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(run_journaled)
    };
    let (report1, _, journal1) = run_at(1);
    let (report4, _, journal4) = run_at(4);
    assert_eq!(
        journal1.masked().to_jsonl(),
        journal4.masked().to_jsonl(),
        "the masked event journal must not depend on the thread count"
    );
    let diag1 = report1.fit_diagnostics.as_ref().expect("cold fit ran");
    let diag4 = report4.fit_diagnostics.as_ref().expect("cold fit ran");
    assert_eq!(
        diag1.to_json(),
        diag4.to_json(),
        "fit diagnostics must not depend on the thread count"
    );
    assert_eq!(report1.prediction, report4.prediction);

    // Diagnostics sanity on the tiny run: every element has a winner, and
    // the extrapolation distance is target / max(training) = 384 / 96.
    let wins: u64 = diag1.form_wins.values().sum();
    assert_eq!(wins, diag1.elements.len() as u64);
    assert!(!diag1.elements.is_empty());
    assert_eq!(diag1.extrapolation_distance(), 4.0);
}

#[test]
fn journaling_does_not_perturb_the_prediction() {
    let plain = Pipeline::new(tiny_config()).unwrap().run().unwrap();
    let (journaled, _, journal) = run_journaled();
    assert_eq!(
        serde_json::to_string(&plain.prediction).unwrap(),
        serde_json::to_string(&journaled.prediction).unwrap(),
        "journaling changed the prediction"
    );
    assert_eq!(plain.extrapolated, journaled.extrapolated);

    // The run journaled real events, and masking leaves a well-formed
    // stream: timestamps zeroed, scheduling events stripped, sequence
    // numbers renumbered from zero with no gaps.
    assert!(!journal.events.is_empty());
    let masked = journal.masked();
    assert!(!masked.events.is_empty());
    for (i, ev) in masked.events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64);
        assert_eq!(ev.ts_us, 0);
        assert!(!ev.name.starts_with(SCHED_EVENT_PREFIX));
    }
}

/// Event-spec alphabet for the journal property test. One name is a
/// `sched.`-prefixed scheduling event, which masking must strip.
const PROP_NAMES: [&str; 4] = ["collect.p8", "extrap.fit.Linear", "sched.steal", "spmd.sim"];
const PROP_LANES: [&str; 3] = ["collect", "fit", "spmd"];

fn emit_spec(journal: &std::sync::Arc<Journal>, specs: &[(usize, usize, usize, f64)]) {
    let handle = journal.handle();
    for &(name_i, lane_i, phase_i, arg) in specs {
        let name = PROP_NAMES[name_i % PROP_NAMES.len()];
        let lane = PROP_LANES[lane_i % PROP_LANES.len()];
        let args = [("v", arg)];
        match phase_i % 3 {
            0 => handle.begin(name, lane, &args),
            1 => handle.end(name, lane, &args),
            _ => handle.instant(name, lane, &args),
        }
    }
}

proptest! {
    /// For arbitrary event streams: sequence numbers strictly increase in
    /// buffer order, and masking is a deterministic, sched-stripping,
    /// timestamp-zeroing function of the event sequence alone.
    #[test]
    fn journal_seqs_strictly_increase_and_masking_is_deterministic(
        specs in proptest::collection::vec(
            (0usize..4, 0usize..3, 0usize..3, 0.0f64..100.0),
            1..60,
        ),
    ) {
        let j1 = Journal::new();
        emit_spec(&j1, &specs);
        let snap1 = j1.snapshot();
        prop_assert_eq!(snap1.events.len(), specs.len());
        for pair in snap1.events.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq, "seqs must strictly increase");
        }

        // Re-emitting the same specs into a fresh journal yields the same
        // masked stream even though wall-clock timestamps differ.
        let j2 = Journal::new();
        emit_spec(&j2, &specs);
        let m1 = snap1.masked();
        prop_assert_eq!(&m1, &j2.snapshot().masked());

        let sched = specs
            .iter()
            .filter(|&&(name_i, _, _, _)| {
                PROP_NAMES[name_i % PROP_NAMES.len()].starts_with(SCHED_EVENT_PREFIX)
            })
            .count();
        prop_assert_eq!(m1.events.len(), specs.len() - sched);
        for (i, ev) in m1.events.iter().enumerate() {
            prop_assert_eq!(ev.seq, i as u64);
            prop_assert_eq!(ev.ts_us, 0);
            prop_assert!(!ev.name.starts_with(SCHED_EVENT_PREFIX));
            prop_assert!(matches!(
                ev.phase,
                EventPhase::Begin | EventPhase::End | EventPhase::Instant
            ));
        }
    }
}
