//! Observability contract tests (PR 4 satellite): the metrics a pipeline
//! run emits are part of the public surface, so their *names and
//! deterministic values* are pinned by a committed golden snapshot, their
//! totals must not depend on the thread count, and recording them must not
//! perturb the prediction by a single bit.
//!
//! Wall-clock span durations and scheduling-dependent `sched.*` counters
//! are the only nondeterministic fields; [`Snapshot::masked`] zeroes the
//! former and strips the latter, and everything left is required to be a
//! pure function of the pipeline inputs.
//!
//! To re-bless the golden after an *intentional* metrics change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test observability
//! ```
//!
//! then commit the refreshed `tests/golden/specfem_tiny_metrics.json` and
//! explain the delta in the PR.

use std::sync::Mutex;

use xtrace::core::{Pipeline, PipelineConfig, PipelineReport};
use xtrace::obs::{Recorder, Snapshot};

// The ambient recorder is process-global; serialize the tests that
// install one so concurrent test threads cannot cross-contaminate.
static SERIAL: Mutex<()> = Mutex::new(());

/// Same tiny SPECFEM3D run as the golden-prediction test: three training
/// counts, no validation stage, light tracer sampling.
fn tiny_config() -> PipelineConfig {
    PipelineConfig::builder("specfem3d", "cray-xt5", vec![6, 24, 96], 384)
        .scale("tiny")
        .fast_tracer(true)
        .validate(false)
        .build()
}

fn run_recorded() -> (PipelineReport, Snapshot) {
    let recorder = Recorder::new();
    let mut pipeline = Pipeline::new(tiny_config())
        .unwrap()
        .with_recorder(recorder.clone());
    let report = pipeline.run().unwrap();
    (report, recorder.snapshot())
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/specfem_tiny_metrics.json")
}

#[test]
fn masked_metrics_snapshot_matches_committed_golden() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (_, snapshot) = run_recorded();
    let actual = snapshot.masked().to_json();

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual + "\n").unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden metrics snapshot at {} ({e}); run \
             UPDATE_GOLDEN=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "masked metrics snapshot drifted from {}; if the change is \
         intentional, re-bless with UPDATE_GOLDEN=1 and explain the \
         delta in the PR",
        path.display()
    );
}

#[test]
fn masked_metrics_are_thread_invariant() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let run_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(run_recorded)
    };
    let (report1, snap1) = run_at(1);
    let (report4, snap4) = run_at(4);
    assert_eq!(
        snap1.masked(),
        snap4.masked(),
        "counter totals must not depend on the thread count"
    );
    assert_eq!(report1.prediction, report4.prediction);
}

#[test]
fn recording_does_not_perturb_the_prediction() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let plain = Pipeline::new(tiny_config()).unwrap().run().unwrap();
    let (recorded, snapshot) = run_recorded();
    // Bit-identical, not approximately equal: serialize both and compare
    // the exact decimal expansions.
    assert_eq!(
        serde_json::to_string(&plain.prediction).unwrap(),
        serde_json::to_string(&recorded.prediction).unwrap(),
        "metrics recording changed the prediction"
    );
    assert_eq!(plain.extrapolated, recorded.extrapolated);
    // And the run actually recorded something.
    assert!(!snapshot.spans.is_empty());
    assert!(snapshot.counters.values().any(|&v| v > 0));
}
