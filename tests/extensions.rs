//! Integration tests for the Section-VI extensions through the facade:
//! weak scaling, input-parameter series, full-signature synthesis,
//! whole-application replay, and energy prediction.

use xtrace::apps::{ProxyApp, ScalingMode, SpecfemProxy, StencilProxy};
use xtrace::extrap::{
    extrapolate_series, extrapolate_signature, synthesize_full_signature, ExtrapolationConfig,
};
use xtrace::machine::{presets, MachineProfile};
use xtrace::psins::{
    ground_truth_application, relative_error, try_predict_energy, try_predict_runtime,
    try_replay_groups,
};
use xtrace::tracer::{collect_ranks, collect_signature_with, TracerConfig};

fn small_specfem() -> SpecfemProxy {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 6144;
    app.cfg.timesteps = 10;
    app.cfg.collect_per_rank = 4096;
    app.cfg.source_iters = 500_000;
    app
}

#[test]
fn weak_scaling_extrapolates_nearly_perfectly() {
    let mut app = small_specfem();
    app.cfg.total_elements = 64; // per-rank under weak scaling
    app.cfg.scaling = ScalingMode::Weak;
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let training: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &cfg)
                .longest_task()
                .clone()
        })
        .collect();
    let ex = extrapolate_signature(&training, 384, &ExtrapolationConfig::default()).unwrap();
    let coll = collect_signature_with(&app, 384, &machine, &cfg);
    let pe = try_predict_runtime(&ex, &app.comm_profile(384), &machine).unwrap();
    let pc = try_predict_runtime(coll.longest_task(), &coll.comm, &machine).unwrap();
    let gap = relative_error(pe.total_seconds, pc.total_seconds);
    assert!(gap < 0.03, "weak-scaling gap {gap}");
}

#[test]
fn series_extrapolation_over_problem_size_via_facade() {
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let p = 24u32;
    let mk = |elements: u64| {
        let mut app = small_specfem();
        app.cfg.total_elements = elements;
        app
    };
    let points: Vec<(f64, _)> = [3072u64, 6144, 12288]
        .iter()
        .map(|&n| {
            let sig = collect_signature_with(&mk(n), p, &machine, &cfg);
            (n as f64, sig.longest_task().clone())
        })
        .collect();
    let ex = extrapolate_series(&points, 49_152.0, &ExtrapolationConfig::default()).unwrap();
    assert_eq!(ex.nranks, p, "core count unchanged on the size axis");
    // Worker counts grow linearly with the mesh: check the stiffness block.
    let coll = collect_signature_with(&mk(49_152), p, &machine, &cfg);
    let e = ex.block("stiffness-matmul").unwrap().instrs[0]
        .features
        .mem_ops;
    let c = coll
        .longest_task()
        .block("stiffness-matmul")
        .unwrap()
        .instrs[0]
        .features
        .mem_ops;
    assert!((e - c).abs() / c < 0.01, "{e} vs {c}");
}

#[test]
fn full_signature_covers_population_and_replays() {
    let app = small_specfem();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let sample: Vec<u32> = (0..6).collect();
    let per_count: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| (p, collect_ranks(&app, &sample, p, &machine, &cfg)))
        .collect();
    let sig =
        synthesize_full_signature(&per_count, 192, 2, &ExtrapolationConfig::default()).unwrap();
    assert_eq!(sig.total_ranks(), 192);
    assert_eq!(sig.groups[0].ranks, 1, "master is an absolute singleton");

    let groups: Vec<_> = sig
        .groups
        .iter()
        .map(|g| (g.trace.clone(), g.ranks))
        .collect();
    let replay = try_replay_groups(&app, 192, &groups, &machine).unwrap();
    let exact = ground_truth_application(&app, 192, &machine, &cfg);
    let err = relative_error(replay.total_seconds, exact.total_seconds);
    assert!(
        err < 0.30,
        "replay {} vs exact {} ({err})",
        replay.total_seconds,
        exact.total_seconds
    );
    // The master rank computes more than any worker in the replay.
    assert!(replay.ranks[0].compute_s > 3.0 * replay.ranks[191].compute_s);
}

#[test]
fn energy_extrapolates_with_runtime() {
    let app = small_specfem();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let training: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &cfg)
                .longest_task()
                .clone()
        })
        .collect();
    let ex = extrapolate_signature(&training, 384, &ExtrapolationConfig::default()).unwrap();
    let coll = collect_signature_with(&app, 384, &machine, &cfg);
    let comm = app.comm_profile(384);
    let e_ex = try_predict_energy(&ex, &comm, &machine).unwrap();
    let e_coll = try_predict_energy(coll.longest_task(), &coll.comm, &machine).unwrap();
    let gap = relative_error(e_ex.total_joules, e_coll.total_joules);
    assert!(gap < 0.05, "energy gap {gap}");
    assert!(e_ex.avg_watts > machine.power.static_watts);
}

#[test]
fn machine_profiles_roundtrip_through_spec_files() {
    let machine = presets::opteron();
    let spec = machine.to_spec();
    let json = serde_json::to_string(&spec).unwrap();
    let reloaded = MachineProfile::from_spec(serde_json::from_str(&json).unwrap()).unwrap();

    // Predictions through the reloaded profile match the original.
    let app = StencilProxy::small();
    let cfg = TracerConfig::fast();
    let sig = collect_signature_with(&app, 4, &machine, &cfg);
    let a = try_predict_runtime(sig.longest_task(), &sig.comm, &machine).unwrap();
    let b = try_predict_runtime(sig.longest_task(), &sig.comm, &reloaded).unwrap();
    assert!((a.total_seconds - b.total_seconds).abs() / a.total_seconds < 1e-9);
}
