//! End-to-end golden test (satellite c): a tiny SPECFEM3D-proxy pipeline
//! whose predicted-runtime JSON must match the committed golden file
//! byte-for-byte, regardless of thread count or intermediate refactors.
//!
//! To re-bless after an *intentional* model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden_pipeline
//! ```
//!
//! then commit the refreshed `tests/golden/specfem_tiny_prediction.json`
//! and explain the delta in the PR.

use xtrace::core::{Pipeline, PipelineConfig};

fn golden_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::new("specfem3d", "cray-xt5", vec![6, 24, 96], 384);
    cfg.scale = "tiny".into();
    cfg.fast_tracer = true;
    cfg.validate = false;
    cfg
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/specfem_tiny_prediction.json")
}

#[test]
fn tiny_specfem_prediction_matches_committed_golden() {
    let report = Pipeline::new(golden_config()).unwrap().run().unwrap();
    let actual = serde_json::to_string_pretty(&report.prediction).unwrap();

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "prediction JSON drifted from {}; if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1 and justify the delta in the PR",
        path.display()
    );
}

#[test]
fn golden_run_is_invariant_under_thread_count() {
    // PR 1 made collection thread-invariant; the golden pipeline must stay
    // bit-stable whether rayon fans out over 1 or many workers.
    let run_with_threads = |n: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap();
        pool.install(|| {
            let report = Pipeline::new(golden_config()).unwrap().run().unwrap();
            serde_json::to_string_pretty(&report.prediction).unwrap()
        })
    };
    let one = run_with_threads(1);
    let four = run_with_threads(4);
    assert_eq!(one, four, "prediction depends on rayon thread count");
}

#[test]
fn golden_run_resumes_from_the_store() {
    let dir = std::env::temp_dir().join(format!("xtrace-golden-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = Pipeline::new(golden_config())
        .unwrap()
        .with_store(&dir)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert!(cold.cache_misses > 0);

    let warm = Pipeline::new(golden_config())
        .unwrap()
        .with_store(&dir)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(warm.cache_misses, 0, "warm run recomputed artifacts");
    assert!(warm.cache_hits > 0);
    assert_eq!(warm.prediction, cold.prediction);
    assert_eq!(warm.extrapolated, cold.extrapolated);

    let _ = std::fs::remove_dir_all(&dir);
}
