//! End-to-end pipeline integration: trace → fit → extrapolate → predict,
//! across crates, at laptop scale.

use xtrace::apps::{ProxyApp, SpecfemProxy, StencilProxy, Uh3dProxy};
use xtrace::core::{Pipeline, PipelineConfig};
use xtrace::extrap::{
    element_errors, extrapolate_signature, extrapolate_signature_detailed, summarize,
    CanonicalForm, ExtrapolationConfig,
};
use xtrace::machine::presets;
use xtrace::psins::{ground_truth, relative_error, try_predict_runtime};
use xtrace::spmd::SpmdApp;
use xtrace::tracer::{collect_signature_with, TracerConfig};

fn small_specfem() -> SpecfemProxy {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 6144;
    app.cfg.timesteps = 10;
    app.cfg.collect_per_rank = 4096;
    app.cfg.source_iters = 500_000;
    app
}

#[test]
fn specfem_pipeline_extrapolated_matches_collected_prediction() {
    let app = small_specfem();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let training: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &cfg)
                .longest_task()
                .clone()
        })
        .collect();
    let extrapolated =
        extrapolate_signature(&training, 384, &ExtrapolationConfig::default()).unwrap();

    let collected = collect_signature_with(&app, 384, &machine, &cfg);
    let comm = app.comm_profile(384);
    let pe = try_predict_runtime(&extrapolated, &comm, &machine).unwrap();
    let pc = try_predict_runtime(collected.longest_task(), &collected.comm, &machine).unwrap();

    let gap = relative_error(pe.total_seconds, pc.total_seconds);
    assert!(
        gap < 0.05,
        "extrapolated vs collected predictions diverge: {} vs {} ({gap})",
        pe.total_seconds,
        pc.total_seconds
    );
}

#[test]
fn specfem_prediction_tracks_measured_runtime() {
    let app = small_specfem();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let sig = collect_signature_with(&app, 96, &machine, &cfg);
    let pred = try_predict_runtime(sig.longest_task(), &sig.comm, &machine).unwrap();
    let measured = ground_truth(&app, 96, &machine, &cfg);
    let err = relative_error(pred.total_seconds, measured.total_seconds);
    assert!(
        err < 0.20,
        "prediction {} vs measured {} (err {err})",
        pred.total_seconds,
        measured.total_seconds
    );
}

#[test]
fn uh3d_pipeline_runs_and_log_block_extrapolates_exactly() {
    let mut app = Uh3dProxy::small();
    app.cfg.total_particles = 1 << 14;
    app.cfg.grid_cells = 1 << 13;
    app.cfg.sort_base = 512;
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let training: Vec<_> = [8u32, 16, 32]
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &cfg)
                .longest_task()
                .clone()
        })
        .collect();
    let (extrapolated, fits) =
        extrapolate_signature_detailed(&training, 64, &ExtrapolationConfig::default()).unwrap();

    // The particle-sort trip count is exactly sort_base * log2(P) at
    // power-of-two counts, so the log form must win and extrapolate with
    // zero error.
    let sort_fit = fits
        .iter()
        .find(|f| {
            f.block == "particle-sort"
                && f.feature == xtrace::tracer::FeatureId::MemOps
                && f.values[0] > 0.0
        })
        .expect("sort block memops fit exists");
    assert_eq!(sort_fit.model.form, CanonicalForm::Logarithmic);

    let collected = collect_signature_with(&app, 64, &machine, &cfg);
    let sort_extrap = extrapolated.block("particle-sort").unwrap();
    let sort_coll = collected.longest_task().block("particle-sort").unwrap();
    let rel = (sort_extrap.instrs[0].features.mem_ops - sort_coll.instrs[0].features.mem_ops).abs()
        / sort_coll.instrs[0].features.mem_ops;
    assert!(
        rel < 1e-6,
        "log-block counts extrapolate exactly, got {rel}"
    );
}

#[test]
fn influential_element_errors_stay_bounded() {
    let app = small_specfem();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let training: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &cfg)
                .longest_task()
                .clone()
        })
        .collect();
    let ex = extrapolate_signature(&training, 384, &ExtrapolationConfig::default()).unwrap();
    let coll = collect_signature_with(&app, 384, &machine, &cfg);
    let errors = element_errors(&ex, coll.longest_task());
    let summary = summarize(&errors, 0.001);
    assert!(summary.n_influential > 0);
    assert!(summary.n_influential < summary.n_total);
    assert!(
        summary.frac_influential_under_20pct > 0.9,
        "only {}% of influential elements under 20%",
        100.0 * summary.frac_influential_under_20pct
    );
}

#[test]
fn engine_matches_manual_composition_bit_for_bit() {
    // The staged engine must be a pure refactor of the hand-written
    // pipeline: same traces in, bit-identical prediction out.
    let mut cfg = PipelineConfig::new("specfem3d", "cray-xt5", vec![6, 24, 96], 384);
    cfg.scale = "tiny".into();
    cfg.fast_tracer = true;
    cfg.validate = false;
    let report = Pipeline::new(cfg).unwrap().run().unwrap();

    let app = small_specfem();
    let machine = presets::cray_xt5();
    let tcfg = TracerConfig::fast();
    let training: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &tcfg)
                .longest_task()
                .clone()
        })
        .collect();
    let extrapolated =
        extrapolate_signature(&training, 384, &ExtrapolationConfig::default()).unwrap();
    let manual = try_predict_runtime(&extrapolated, &app.comm_profile(384), &machine).unwrap();

    assert_eq!(report.extrapolated, extrapolated);
    assert_eq!(report.prediction.total_seconds, manual.total_seconds);
    assert_eq!(report.prediction.per_block, manual.per_block);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let app = StencilProxy::small();
    let machine = presets::opteron();
    let cfg = TracerConfig::fast();
    let run = || {
        let training: Vec<_> = [2u32, 4, 8]
            .iter()
            .map(|&p| {
                collect_signature_with(&app, p, &machine, &cfg)
                    .longest_task()
                    .clone()
            })
            .collect();
        let ex = extrapolate_signature(&training, 32, &ExtrapolationConfig::default()).unwrap();
        try_predict_runtime(&ex, &app.comm_profile(32), &machine)
            .unwrap()
            .total_seconds
    };
    assert_eq!(run(), run());
}

#[test]
fn signatures_transfer_across_target_machines() {
    // Cross-architecture workflow: the same app traced against different
    // target hierarchies yields different hit rates and predictions.
    let app = StencilProxy::medium();
    let cfg = TracerConfig::fast();
    let m_small = presets::opteron(); // 1 MB L2, 2 levels
    let m_big = presets::cray_xt5(); // 8 MB L3, 3 levels
    let s_small = collect_signature_with(&app, 8, &m_small, &cfg);
    let s_big = collect_signature_with(&app, 8, &m_big, &cfg);
    assert_eq!(s_small.longest_task().depth, 2);
    assert_eq!(s_big.longest_task().depth, 3);
    let p_small = try_predict_runtime(s_small.longest_task(), &s_small.comm, &m_small).unwrap();
    let p_big = try_predict_runtime(s_big.longest_task(), &s_big.comm, &m_big).unwrap();
    assert!(p_small.total_seconds > 0.0 && p_big.total_seconds > 0.0);
    assert_ne!(p_small.total_seconds, p_big.total_seconds);
}

#[test]
fn every_proxy_app_traces_on_every_preset() {
    let cfg = TracerConfig::fast();
    let apps: Vec<Box<dyn SpmdApp>> = vec![
        Box::new(SpecfemProxy::small()),
        Box::new(Uh3dProxy::small()),
        Box::new(StencilProxy::small()),
    ];
    for machine in presets::all() {
        for app in &apps {
            let sig = collect_signature_with(app.as_ref(), 4, &machine, &cfg);
            let t = sig.longest_task();
            assert!(!t.blocks.is_empty(), "{} on {}", app.name(), machine.name);
            assert!(t.total_mem_ops() > 0.0);
            for b in &t.blocks {
                for i in &b.instrs {
                    for l in 0..t.depth {
                        let hr = i.features.hit_rates[l];
                        assert!((0.0..=1.0).contains(&hr));
                    }
                }
            }
        }
    }
}
