//! Determinism guarantees across the whole stack: identical results across
//! repeated runs, across rayon thread-pool sizes, and across collection
//! orderings. The extrapolation experiments compare traces collected in
//! different processes, so any nondeterminism would masquerade as scaling
//! behaviour.

use xtrace::apps::{SpecfemProxy, StencilProxy};
use xtrace::machine::presets;
use xtrace::tracer::{collect_ranks, collect_task_trace, TracerConfig};

#[test]
fn rank_collection_is_invariant_under_thread_pool_size() {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 2048;
    app.cfg.timesteps = 4;
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let ranks: Vec<u32> = (0..8).collect();

    let run_with_threads = |n: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool builds");
        pool.install(|| collect_ranks(&app, &ranks, 8, &machine, &cfg))
    };

    let serial = run_with_threads(1);
    let parallel = run_with_threads(4);
    assert_eq!(serial, parallel, "results depend on thread count");
}

#[test]
fn collection_order_does_not_matter() {
    let app = StencilProxy::small();
    let machine = presets::opteron();
    let cfg = TracerConfig::fast();

    // Interleave collections of different ranks/counts; each trace must
    // equal a freshly collected one (no hidden shared state).
    let t3_first = collect_task_trace(&app, 3, 8, &machine, &cfg);
    let _noise1 = collect_task_trace(&app, 0, 4, &machine, &cfg);
    let _noise2 = collect_task_trace(&app, 7, 8, &machine, &cfg);
    let t3_again = collect_task_trace(&app, 3, 8, &machine, &cfg);
    assert_eq!(t3_first, t3_again);
}

#[test]
fn surfaces_measure_identically_across_pools() {
    let run_with_threads = |n: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool builds");
        pool.install(|| {
            let m = presets::opteron();
            m.surface().clone()
        })
    };
    let a = run_with_threads(1);
    let b = run_with_threads(8);
    assert_eq!(a, b, "surface measurement depends on parallelism");
}
