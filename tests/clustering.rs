//! Integration test of the Section-VI clustering extension: cluster real
//! multi-rank trace collections and extrapolate per cluster.

use xtrace::apps::SpecfemProxy;
use xtrace::extrap::{cluster_tasks, extrapolate_clusters, ExtrapolationConfig};
use xtrace::machine::presets;
use xtrace::tracer::{collect_ranks, TracerConfig};

fn app() -> SpecfemProxy {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 6144;
    app.cfg.timesteps = 5;
    app.cfg.collect_per_rank = 2048;
    app
}

#[test]
fn master_and_workers_form_distinct_clusters() {
    let app = app();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    // Trace the master plus a few workers.
    let traces = collect_ranks(&app, &[0, 1, 2, 3, 4, 5], 24, &machine, &cfg);
    let clustering = cluster_tasks(&traces, 2);
    // The master (rank 0) must be alone in its cluster: its work profile is
    // dominated by aggregation, unlike any worker.
    let master_cluster = clustering.assignments[0];
    let master_members = clustering.members(master_cluster);
    assert_eq!(master_members, vec![0], "master clusters alone");
    assert_eq!(clustering.members(1 - master_cluster).len(), 5);
}

#[test]
fn per_cluster_extrapolation_produces_ordered_traces() {
    let app = app();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let ranks = [0u32, 1, 2, 3];
    let per_count: Vec<_> = [6u32, 24, 96]
        .iter()
        .map(|&p| (p, collect_ranks(&app, &ranks, p, &machine, &cfg)))
        .collect();
    let out = extrapolate_clusters(&per_count, 384, 2, &ExtrapolationConfig::default())
        .expect("cluster extrapolation succeeds");
    assert_eq!(out.len(), 2);
    assert!(out.iter().all(|t| t.nranks == 384));
    // Heaviest cluster first, and it must be the master-like one (its
    // aggregation work grows with P, so it dominates at the target).
    assert!(out[0].total_mem_ops() > out[1].total_mem_ops());
    assert!(
        out[0].block("master-collect").unwrap().instrs[0]
            .features
            .mem_ops
            > out[1].block("master-collect").unwrap().instrs[0]
                .features
                .mem_ops
    );
}

#[test]
fn parallel_rank_collection_matches_serial() {
    // collect_ranks fans out over rayon; results must equal one-by-one
    // collection regardless of scheduling.
    let app = app();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let ranks = [0u32, 3, 7];
    let parallel = collect_ranks(&app, &ranks, 24, &machine, &cfg);
    for (i, &r) in ranks.iter().enumerate() {
        let serial = xtrace::tracer::collect_task_trace(&app, r, 24, &machine, &cfg);
        assert_eq!(parallel[i], serial, "rank {r}");
    }
}
