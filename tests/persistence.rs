//! Cross-crate persistence integration: traces survive both on-disk
//! formats, and extrapolation works on reloaded traces.

use xtrace::apps::StencilProxy;
use xtrace::extrap::{extrapolate_signature, ExtrapolationConfig};
use xtrace::machine::presets;
use xtrace::tracer::{
    collect_signature_with, from_bytes, load_json, save_json, to_bytes, TracerConfig,
};

#[test]
fn binary_roundtrip_of_real_traces_is_exact() {
    let app = StencilProxy::small();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    for p in [2u32, 4, 8] {
        let sig = collect_signature_with(&app, p, &machine, &cfg);
        let t = sig.longest_task();
        let back = from_bytes(&to_bytes(t)).expect("decodes");
        assert_eq!(&back, t, "binary roundtrip at {p} cores");
    }
}

#[test]
fn json_files_roundtrip_and_feed_extrapolation() {
    let app = StencilProxy::small();
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let dir = std::env::temp_dir().join("xtrace-integration");
    std::fs::create_dir_all(&dir).unwrap();

    let mut paths = Vec::new();
    for p in [2u32, 4, 8] {
        let sig = collect_signature_with(&app, p, &machine, &cfg);
        let path = dir.join(format!("stencil-{p}.json"));
        save_json(sig.longest_task(), &path).unwrap();
        paths.push(path);
    }

    let reloaded: Vec<_> = paths.iter().map(|p| load_json(p).unwrap()).collect();
    let ex = extrapolate_signature(&reloaded, 32, &ExtrapolationConfig::default())
        .expect("reloaded traces extrapolate");
    assert_eq!(ex.nranks, 32);
    assert_eq!(ex.machine, "cray-xt5");

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn json_and_binary_agree() {
    let app = StencilProxy::small();
    let machine = presets::opteron();
    let sig = collect_signature_with(&app, 4, &machine, &TracerConfig::fast());
    let t = sig.longest_task();
    let via_bin = from_bytes(&to_bytes(t)).unwrap();
    let via_json: xtrace::tracer::TaskTrace =
        serde_json::from_str(&serde_json::to_string(t).unwrap()).unwrap();
    // The binary format is bit-exact; JSON may round the last ulp of
    // floats, so compare structure plus near-equality of features.
    assert_eq!(via_bin.blocks.len(), via_json.blocks.len());
    for (a, b) in via_bin.blocks.iter().zip(&via_json.blocks) {
        assert_eq!(a.name, b.name);
        for (ia, ib) in a.instrs.iter().zip(&b.instrs) {
            assert!((ia.features.mem_ops - ib.features.mem_ops).abs() <= 1.0);
            for l in 0..4 {
                assert!((ia.features.hit_rates[l] - ib.features.hit_rates[l]).abs() < 1e-12);
            }
        }
    }
}
