//! Multi-client engine tests (PR 6 tentpole): one process serving many
//! pipeline sessions must stay *observably* and *numerically* equivalent
//! to the single-session runs the goldens pin.
//!
//! * An [`XtraceEngine`] run reproduces the committed golden prediction
//!   and masked-metrics snapshot bit-for-bit — the scoped-context +
//!   shared-store path changes nothing.
//! * Two different configs running concurrently in one process each keep
//!   their own metrics: the golden session's masked snapshot is identical
//!   to what it produces alone, with no counters bled in from its
//!   neighbor.
//! * Eight identical in-flight `run` calls coalesce onto one cold
//!   pipeline execution: the shared store sees exactly one cold set of
//!   artifact writes, and seven callers return flagged `coalesced`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xtrace::core::{PipelineConfig, StageKind, StageObserver, XtraceEngine};

/// The tiny SPECFEM3D run every golden file pins.
fn golden_config() -> PipelineConfig {
    PipelineConfig::builder("specfem3d", "cray-xt5", vec![6, 24, 96], 384)
        .scale("tiny")
        .fast_tracer(true)
        .validate(false)
        .build()
}

/// A config with a different hash (no coalescing with the golden run).
fn other_config() -> PipelineConfig {
    PipelineConfig::builder("stencil3d", "opteron", vec![2, 4, 8], 32)
        .fast_tracer(true)
        .validate(false)
        .build()
}

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()))
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn engine_outcome_matches_golden_prediction_and_metrics() {
    let engine = XtraceEngine::new();
    let outcome = engine.run(&golden_config()).unwrap();
    assert!(!outcome.coalesced);

    let prediction = serde_json::to_string_pretty(&outcome.report.prediction).unwrap();
    assert_eq!(
        prediction,
        golden("specfem_tiny_prediction.json"),
        "engine-run prediction drifted from the golden"
    );
    // The engine journals every run; journaling must not perturb the
    // masked metrics, so the single-session golden applies verbatim.
    assert_eq!(
        outcome.metrics.masked().to_json(),
        golden("specfem_tiny_metrics.json").trim_end_matches('\n'),
        "engine-run masked metrics drifted from the golden"
    );
    assert!(outcome.journal.is_some(), "engine runs carry their journal");
}

#[test]
fn concurrent_sessions_keep_their_metrics_isolated() {
    // Reference outcomes, one session at a time.
    let solo = XtraceEngine::new();
    let golden_alone = solo.run(&golden_config()).unwrap();
    let other_alone = solo.run(&other_config()).unwrap();
    assert_ne!(
        golden_config().config_hash(),
        other_config().config_hash(),
        "the two sessions must not coalesce"
    );

    // Now both at once on a shared engine.
    let engine = Arc::new(XtraceEngine::new());
    let (golden_out, other_out) = std::thread::scope(|scope| {
        let e1 = Arc::clone(&engine);
        let e2 = Arc::clone(&engine);
        let t1 = scope.spawn(move || e1.run(&golden_config()).unwrap());
        let t2 = scope.spawn(move || e2.run(&other_config()).unwrap());
        (
            t1.join().expect("golden session"),
            t2.join().expect("other session"),
        )
    });

    // Each session's prediction and masked metrics are exactly what it
    // produces alone — scoped contexts, no cross-session counter bleed.
    assert_eq!(golden_out.report.prediction, golden_alone.report.prediction);
    assert_eq!(other_out.report.prediction, other_alone.report.prediction);
    assert_eq!(
        golden_out.metrics.masked().to_json(),
        golden_alone.metrics.masked().to_json(),
        "concurrent neighbor bled into the golden session's metrics"
    );
    assert_eq!(
        other_out.metrics.masked().to_json(),
        other_alone.metrics.masked().to_json(),
        "golden session bled into its neighbor's metrics"
    );
    // And the golden session still matches the committed golden.
    assert_eq!(
        serde_json::to_string_pretty(&golden_out.report.prediction).unwrap(),
        golden("specfem_tiny_prediction.json")
    );
}

/// Blocks the leader inside its Collect stage until the test releases it,
/// guaranteeing the seven followers register while the flight is open.
struct HoldAtCollect {
    release: Arc<AtomicBool>,
}

impl StageObserver for HoldAtCollect {
    fn stage_started(&mut self, stage: StageKind) {
        if stage == StageKind::Collect {
            let deadline = Instant::now() + Duration::from_secs(60);
            while !self.release.load(Ordering::Acquire) {
                assert!(Instant::now() < deadline, "leader was never released");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

#[test]
fn eight_identical_inflight_runs_coalesce_onto_one_cold_pipeline() {
    let root = std::env::temp_dir().join(format!("xtrace-engine-coalesce-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let engine = Arc::new(XtraceEngine::new().with_store(&root).unwrap());
    let cfg = other_config();
    let release = Arc::new(AtomicBool::new(false));

    let mut outcomes = std::thread::scope(|scope| {
        // The leader parks inside Collect with its flight registered.
        let leader = {
            let engine = Arc::clone(&engine);
            let cfg = cfg.clone();
            let release = Arc::clone(&release);
            scope.spawn(move || {
                engine
                    .run_with_observer(&cfg, Some(Box::new(HoldAtCollect { release })))
                    .unwrap()
            })
        };
        wait_until("the leader's flight to register", || {
            engine.in_flight() == 1
        });

        // Seven followers pile onto the same config hash.
        let followers: Vec<_> = (0..7)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let cfg = cfg.clone();
                scope.spawn(move || engine.run(&cfg).unwrap())
            })
            .collect();
        wait_until("all 7 followers to park", || engine.waiting() == 7);

        // Only now may the single cold pipeline proceed.
        release.store(true, Ordering::Release);

        let mut outcomes = vec![leader.join().expect("leader")];
        outcomes.extend(followers.into_iter().map(|f| f.join().expect("follower")));
        outcomes
    });

    assert_eq!(engine.in_flight(), 0);
    assert_eq!(engine.waiting(), 0);

    let coalesced = outcomes.iter().filter(|o| o.coalesced).count();
    assert_eq!(coalesced, 7, "exactly the seven followers coalesce");
    assert!(!outcomes[0].coalesced, "the leader ran the pipeline itself");

    // All eight callers share one result (and one producing execution).
    let first = serde_json::to_string(&outcomes[0].report.prediction).unwrap();
    for o in &outcomes {
        assert_eq!(
            serde_json::to_string(&o.report.prediction).unwrap(),
            first,
            "coalesced callers must share the leader's result"
        );
        assert_eq!(
            o.metrics.masked().to_json(),
            outcomes[0].metrics.masked().to_json()
        );
    }

    // Exactly one cold set of artifacts hit the shared store: 3 training
    // traces + fit diagnostics + extrapolated trace + prediction.
    let stats = engine
        .store()
        .expect("engine has a store")
        .cache_stats()
        .expect("shared store is cached");
    assert_eq!(
        stats.writes, 6,
        "eight in-flight runs must produce exactly one cold write set"
    );

    // A later identical run resumes warm from the same store instead of
    // coalescing (the flight is gone) — and writes nothing new.
    let warm = engine.run(&cfg).unwrap();
    assert!(!warm.coalesced);
    assert_eq!(warm.report.cache_hits, 5, "warm run reuses every artifact");
    assert_eq!(warm.report.cache_misses, 0);
    assert_eq!(
        serde_json::to_string(&warm.report.prediction).unwrap(),
        first
    );
    let stats = engine.store().unwrap().cache_stats().unwrap();
    assert_eq!(stats.writes, 6, "warm resume added artifact writes");

    outcomes.clear();
    let _ = std::fs::remove_dir_all(&root);
}
